#include "stream/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace dfp::stream {

namespace {

ClassLabel ScoreWith(const serve::ServableModel& servable,
                     const std::vector<ItemId>& txn,
                     serve::PatternMatchIndex::Scratch* scratch) {
    servable.index.InitScratch(scratch);
    servable.index.EncodeInto(txn, scratch);
    return servable.model.learner().Predict(scratch->encoded);
}

std::vector<double> ClassDistribution(const TransactionDatabase& db) {
    std::vector<double> dist(db.num_classes(), 0.0);
    for (std::size_t t = 0; t < db.num_transactions(); ++t) {
        dist[db.label(t)] += 1.0;
    }
    return dist;
}

}  // namespace

ContinuousTrainer::ContinuousTrainer(ContinuousTrainerConfig config,
                                     StreamingDatabase* db,
                                     serve::ModelRegistry* registry)
    : config_(std::move(config)),
      db_(db),
      registry_(registry),
      miner_(MakeWindowMiner(config_.window_miner, db->config().num_items)),
      drift_(config_.drift, db->config().num_classes) {}

Result<std::unique_ptr<ContinuousTrainer>> ContinuousTrainer::Create(
    ContinuousTrainerConfig config, StreamingDatabase* db,
    serve::ModelRegistry* registry) {
    if (db == nullptr || registry == nullptr) {
        return Status::InvalidArgument(
            "trainer needs a StreamingDatabase and a ModelRegistry");
    }
    if (config.model_dir.empty()) {
        return Status::InvalidArgument("trainer needs a model_dir");
    }
    if (config.max_reload_attempts == 0) {
        return Status::InvalidArgument("max_reload_attempts must be > 0");
    }
    if (config.min_window == 0) {
        return Status::InvalidArgument("min_window must be > 0");
    }
    if (config.use_decayed_snapshot && db->config().decay_half_life <= 0.0) {
        return Status::InvalidArgument(
            "use_decayed_snapshot requires decay_half_life > 0");
    }
    // Fail fast on an unknown learner id instead of on the first retrain.
    DFP_RETURN_NOT_OK(MakeLearnerByTypeId(config.learner_type).status());
    std::error_code ec;
    std::filesystem::create_directories(config.model_dir, ec);
    if (ec) {
        return Status::InvalidArgument(StrFormat(
            "cannot create model_dir '%s': %s", config.model_dir.c_str(),
            ec.message().c_str()));
    }
    return std::unique_ptr<ContinuousTrainer>(
        new ContinuousTrainer(std::move(config), db, registry));
}

Result<AppendResult> ContinuousTrainer::Ingest(TransactionBatch batch) {
    // Canonicalize up front so the rows handed to the window miner are
    // byte-identical to what the StreamingDatabase stores (its Append
    // re-canonicalizes, which is then a no-op).
    for (auto& txn : batch.transactions) {
        std::sort(txn.begin(), txn.end());
        txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    }
    TransactionBatch to_append = batch;  // Append consumes its argument

    std::lock_guard<std::mutex> lock(mu_);
    // Prequential scoring BEFORE the rows become training data: the served
    // model predicts each incoming row, and correctness feeds the drift
    // detector. Skipped until a model is serving.
    if (const serve::ServablePtr snap = registry_->Snapshot()) {
        for (std::size_t t = 0; t < batch.size(); ++t) {
            const ClassLabel predicted =
                ScoreWith(*snap, batch.transactions[t], &scratch_);
            drift_.ObservePrediction(predicted == batch.labels[t]);
        }
    }

    auto appended = db_->Append(std::move(to_append));
    if (!appended.ok()) return appended.status();  // miner/drift untouched

    for (std::size_t t = 0; t < batch.size(); ++t) {
        miner_->Insert(batch.transactions[t]);
        drift_.ObserveLabel(batch.labels[t]);
    }
    for (std::size_t t = 0; t < appended->evicted.size(); ++t) {
        miner_->Evict(appended->evicted.transactions[t]);
    }
    rows_since_retrain_ += batch.size();
    stats_.ingested += batch.size();
    return appended;
}

Result<bool> ContinuousTrainer::MaybeRetrain() {
    std::string trigger;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (db_->window_size() < config_.min_window) return false;
        if (retry_pending_) {
            trigger = "retry";
        } else if (registry_->current_version() == 0) {
            trigger = "bootstrap";
        } else if (config_.retrain_every > 0 &&
                   rows_since_retrain_ >= config_.retrain_every) {
            trigger = "schedule";
            ++stats_.schedule_triggers;
        } else if (config_.drift_trigger) {
            const DriftVerdict verdict = drift_.Check();
            if (verdict.drifted) {
                trigger = verdict.reason;
                ++stats_.drift_triggers;
                obs::Registry::Get()
                    .GetCounter("dfp.stream.drift_detected")
                    .Inc();
            }
        }
    }
    if (trigger.empty()) return false;
    DFP_RETURN_NOT_OK(RetrainNow(trigger));
    return true;
}

Status ContinuousTrainer::RetrainNow(const std::string& trigger) {
    std::lock_guard<std::mutex> retrain_lock(retrain_mu_);
    const auto started = std::chrono::steady_clock::now();

    // Snapshot phase, under the ingest mutex: the window database and the
    // incrementally maintained patterns must describe the same window.
    std::shared_ptr<const TransactionDatabase> window;
    Result<std::vector<Pattern>> mined = std::vector<Pattern>{};
    std::uint64_t stream_version = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (db_->window_size() < config_.min_window) {
            return Status::FailedPrecondition(
                StrFormat("window has %zu rows, need %zu", db_->window_size(),
                          config_.min_window));
        }
        window = db_->SnapshotWindow();
        MinerConfig mc = config_.pipeline.miner;
        // Singletons are redundant next to I in the I ∪ Fs feature space.
        mc.include_singletons = false;
        mined = miner_->MineWindow(mc);
        stream_version = db_->version();
    }
    auto fail = [&](Status st) {
        std::lock_guard<std::mutex> lock(mu_);
        retry_pending_ = true;
        ++stats_.retrain_failures;
        stats_.retry_pending = true;
        obs::Registry::Get().GetCounter("dfp.stream.retrain_failures").Inc();
        DFP_LOG_WARN(StrFormat(
            "stream: retrain (trigger=%s, stream v%llu) failed: %s — "
            "previous model keeps serving, retry armed",
            trigger.c_str(), static_cast<unsigned long long>(stream_version),
            st.message().c_str()));
        return st;
    };
    if (!mined.ok()) return fail(mined.status());

    // Heavy phase, off the ingest path: select → transform → learn, persist,
    // and publish through the registry's validate-then-swap reload.
    auto learner = MakeLearnerByTypeId(config_.learner_type);
    if (!learner.ok()) return fail(learner.status());
    PatternClassifierPipeline pipeline(config_.pipeline);
    Status trained = Status::Ok();
    if (config_.use_decayed_snapshot) {
        auto decayed = db_->SnapshotDecayed();
        if (!decayed.ok()) return fail(decayed.status());
        trained = pipeline.TrainWithCandidates(*decayed, std::move(*mined),
                                               std::move(*learner));
    } else {
        trained = pipeline.TrainWithCandidates(*window, std::move(*mined),
                                               std::move(*learner));
    }
    if (!trained.ok()) return fail(trained);

    const std::string path = ModelPath(stream_version);
    if (const Status saved = SavePipelineModelToFile(pipeline, path);
        !saved.ok()) {
        return fail(saved);
    }

    // Staleness of the model being replaced, measured at swap time.
    const double staleness = registry_->SecondsSinceLastPublish();
    Result<serve::ServablePtr> published =
        Status::Internal("no reload attempted");
    for (std::size_t attempt = 0; attempt < config_.max_reload_attempts;
         ++attempt) {
        published = registry_->Reload(path);
        if (published.ok()) break;
    }
    if (!published.ok()) return fail(published.status());

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    {
        std::lock_guard<std::mutex> lock(mu_);
        retry_pending_ = false;
        rows_since_retrain_ = 0;
        ++stats_.retrains;
        stats_.retry_pending = false;
        stats_.last_stream_version = stream_version;
        stats_.last_model_version = (*published)->version;
        stats_.last_sig_rejected = pipeline.stats().num_sig_rejected;
        stats_.last_retrain_seconds = seconds;
        // Re-arm drift detection against the fresh model: baseline accuracy
        // is the training-window fit, baseline labels the window's mix.
        drift_.SetBaseline(pipeline.Accuracy(*window),
                           ClassDistribution(*window));
        drift_.ResetRecent();
    }
    auto& metrics = obs::Registry::Get();
    metrics.GetCounter("dfp.stream.retrains").Inc();
    metrics.GetGauge("dfp.stream.retrain_seconds").Set(seconds);
    if (staleness >= 0.0) {
        metrics.GetGauge("dfp.stream.staleness_seconds").Set(staleness);
    }
    DFP_LOG_INFO(StrFormat(
        "stream: retrained (trigger=%s) on stream v%llu (%zu rows) -> model "
        "v%llu in %.3fs",
        trigger.c_str(), static_cast<unsigned long long>(stream_version),
        window->num_transactions(),
        static_cast<unsigned long long>((*published)->version), seconds));
    return Status::Ok();
}

DriftVerdict ContinuousTrainer::CheckDrift() const {
    std::lock_guard<std::mutex> lock(mu_);
    return drift_.Check();
}

TrainerStats ContinuousTrainer::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::string ContinuousTrainer::ModelPath(std::uint64_t stream_version) const {
    return StrFormat("%s/stream_model_v%llu.dfp", config_.model_dir.c_str(),
                     static_cast<unsigned long long>(stream_version));
}

}  // namespace dfp::stream
