#include "fpm/prefixspan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace dfp {

SequenceDatabase::SequenceDatabase(std::vector<Sequence> sequences,
                                   std::vector<ClassLabel> labels,
                                   std::size_t num_items, std::size_t num_classes)
    : sequences_(std::move(sequences)),
      labels_(std::move(labels)),
      num_items_(num_items),
      num_classes_(num_classes) {
    assert(sequences_.size() == labels_.size());
}

std::vector<std::size_t> SequenceDatabase::ClassCounts() const {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (ClassLabel y : labels_) counts[y]++;
    return counts;
}

SequenceDatabase SequenceDatabase::FilterByClass(ClassLabel c) const {
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < size(); ++i) {
        if (labels_[i] == c) rows.push_back(i);
    }
    return Subset(rows);
}

SequenceDatabase SequenceDatabase::Subset(const std::vector<std::size_t>& rows) const {
    std::vector<Sequence> seqs;
    std::vector<ClassLabel> labels;
    seqs.reserve(rows.size());
    for (std::size_t r : rows) {
        seqs.push_back(sequences_[r]);
        labels.push_back(labels_[r]);
    }
    return SequenceDatabase(std::move(seqs), std::move(labels), num_items_,
                            num_classes_);
}

bool IsSubsequence(const Sequence& pattern, const Sequence& sequence) {
    std::size_t p = 0;
    for (std::size_t s = 0; s < sequence.size() && p < pattern.size(); ++s) {
        if (sequence[s] == pattern[p]) ++p;
    }
    return p == pattern.size();
}

namespace {

// Pseudo-projection: (sequence index, start offset of the remaining suffix).
struct Projection {
    std::uint32_t seq;
    std::uint32_t offset;
};

struct SpanContext {
    const SequenceDatabase* db;
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<SequentialPattern>* out;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
};

// Recursively extends `prefix` over the projected database. Returns false
// when the execution budget fires.
bool Span(SpanContext& ctx, Sequence& prefix,
          const std::vector<Projection>& projections) {
    // Count each item's support in the projected suffixes (once per sequence).
    std::vector<std::size_t> support(ctx.db->num_items(), 0);
    std::vector<std::uint32_t> last_seen(ctx.db->num_items(), UINT32_MAX);
    for (const Projection& pr : projections) {
        const Sequence& s = ctx.db->sequence(pr.seq);
        for (std::size_t k = pr.offset; k < s.size(); ++k) {
            const ItemId item = s[k];
            if (last_seen[item] != pr.seq) {
                last_seen[item] = pr.seq;
                support[item]++;
            }
        }
    }
    for (ItemId item = 0; item < ctx.db->num_items(); ++item) {
        if (support[item] < ctx.min_sup) continue;
        if (ctx.guard->Check(ctx.out->size(), ctx.est_bytes) !=
            BudgetBreach::kNone) {
            return false;
        }
        prefix.push_back(item);
        ctx.est_bytes +=
            sizeof(SequentialPattern) + prefix.capacity() * sizeof(ItemId);
        ctx.out->push_back({prefix, support[item]});

        if (prefix.size() < ctx.max_len) {
            // Project: first occurrence of `item` at/after each offset.
            std::vector<Projection> next;
            next.reserve(support[item]);
            for (const Projection& pr : projections) {
                const Sequence& s = ctx.db->sequence(pr.seq);
                for (std::size_t k = pr.offset; k < s.size(); ++k) {
                    if (s[k] == item) {
                        next.push_back({pr.seq, static_cast<std::uint32_t>(k + 1)});
                        break;
                    }
                }
            }
            if (!Span(ctx, prefix, next)) {
                prefix.pop_back();
                return false;
            }
        }
        prefix.pop_back();
    }
    return true;
}

}  // namespace

Result<MineOutcome<SequentialPattern>> MineSequencesBudgeted(
    const SequenceDatabase& db, const PrefixSpanConfig& config) {
    std::size_t min_sup = config.min_sup_abs;
    if (config.min_sup_rel >= 0.0) {
        min_sup = static_cast<std::size_t>(
            std::ceil(config.min_sup_rel * static_cast<double>(db.size())));
    }
    min_sup = std::max<std::size_t>(min_sup, 1);

    BudgetGuard guard(config.budget, config.max_patterns);
    MineOutcome<SequentialPattern> outcome;
    std::vector<Projection> root;
    root.reserve(db.size());
    for (std::size_t i = 0; i < db.size(); ++i) {
        root.push_back({static_cast<std::uint32_t>(i), 0});
    }
    Sequence prefix;
    SpanContext ctx{&db, min_sup, config.max_pattern_len, &guard,
                    &outcome.patterns};
    if (!Span(ctx, prefix, root)) {
        outcome.breach = guard.breach();
        RecordBreach("fpm.prefixspan", outcome.breach,
                     static_cast<double>(outcome.patterns.size()));
    }
    return outcome;
}

Result<std::vector<SequentialPattern>> MineSequences(
    const SequenceDatabase& db, const PrefixSpanConfig& config) {
    auto outcome = MineSequencesBudgeted(db, config);
    if (!outcome.ok()) return outcome.status();
    MineOutcome<SequentialPattern> mined = std::move(outcome).value();
    if (mined.breach == BudgetBreach::kCancelled) {
        return Status::Cancelled(
            StrFormat("prefixspan cancelled after %zu patterns",
                      mined.patterns.size()));
    }
    if (mined.truncated()) {
        return Status::ResourceExhausted(
            StrFormat("prefixspan stopped on %s after %zu patterns",
                      BudgetBreachName(mined.breach), mined.patterns.size()));
    }
    return std::move(mined.patterns);
}

SequenceDatabase GenerateSequences(const SequenceSpec& spec) {
    Rng rng(spec.seed);
    // Per-class motifs.
    std::vector<std::vector<Sequence>> motifs(spec.classes);
    for (std::size_t c = 0; c < spec.classes; ++c) {
        for (std::size_t m = 0; m < spec.motifs_per_class; ++m) {
            Sequence motif(spec.motif_len);
            for (ItemId& item : motif) {
                item = static_cast<ItemId>(rng.UniformInt(spec.alphabet));
            }
            motifs[c].push_back(std::move(motif));
        }
    }

    std::vector<Sequence> sequences;
    std::vector<ClassLabel> labels;
    for (std::size_t r = 0; r < spec.rows; ++r) {
        const auto c = static_cast<ClassLabel>(rng.UniformInt(spec.classes));
        const std::size_t len = static_cast<std::size_t>(
            rng.UniformInt(static_cast<std::int64_t>(spec.length_min),
                           static_cast<std::int64_t>(spec.length_max)));
        Sequence s(len);
        for (ItemId& item : s) {
            item = static_cast<ItemId>(rng.UniformInt(spec.alphabet));
        }
        // Plant this class's motifs at random (order-preserving) positions.
        for (const Sequence& motif : motifs[c]) {
            if (!rng.Bernoulli(spec.carrier_prob)) continue;
            if (motif.size() > s.size()) continue;
            std::vector<std::size_t> positions(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) positions[i] = i;
            rng.Shuffle(positions);
            positions.resize(motif.size());
            std::sort(positions.begin(), positions.end());
            for (std::size_t i = 0; i < motif.size(); ++i) {
                s[positions[i]] = motif[i];
            }
        }
        ClassLabel y = c;
        if (rng.Bernoulli(spec.label_noise)) {
            y = static_cast<ClassLabel>(rng.UniformInt(spec.classes));
        }
        sequences.push_back(std::move(s));
        labels.push_back(y);
    }
    return SequenceDatabase(std::move(sequences), std::move(labels), spec.alphabet,
                            spec.classes);
}

}  // namespace dfp
