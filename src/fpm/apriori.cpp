#include "fpm/apriori.hpp"

#include <algorithm>

#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

// Instrumentation tallies, flushed to the registry once per Mine().
struct AprioriTallies {
    std::size_t levels = 0;
    std::size_t candidates_generated = 0;  // joins surviving the subset check
    std::size_t subset_checks = 0;
};

void FlushAprioriMetrics(const AprioriTallies& tallies, std::size_t emitted,
                         bool budget_abort) {
    static auto& levels =
        obs::Registry::Get().GetCounter("dfp.fpm.apriori.levels");
    static auto& candidates =
        obs::Registry::Get().GetCounter("dfp.fpm.apriori.candidates_generated");
    static auto& checks =
        obs::Registry::Get().GetCounter("dfp.fpm.apriori.subset_checks");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.apriori.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.apriori.budget_aborts");
    levels.Inc(tallies.levels);
    candidates.Inc(tallies.candidates_generated);
    checks.Inc(tallies.subset_checks);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Candidate itemset with the cover of its (k-1)-prefix parent, so support
// counting is one AND away.
struct Level {
    std::vector<Itemset> itemsets;
    std::vector<BitVector> covers;
    std::vector<std::size_t> supports;
};

// True if every (k-1)-subset of `candidate` appears in `prev` (sorted).
bool AllSubsetsFrequent(const Itemset& candidate,
                        const std::vector<Itemset>& prev_sorted) {
    Itemset sub(candidate.size() - 1);
    for (std::size_t drop = 0; drop < candidate.size(); ++drop) {
        std::size_t k = 0;
        for (std::size_t i = 0; i < candidate.size(); ++i) {
            if (i != drop) sub[k++] = candidate[i];
        }
        if (!std::binary_search(prev_sorted.begin(), prev_sorted.end(), sub)) {
            return false;
        }
    }
    return true;
}

}  // namespace

Result<MineOutcome<Pattern>> AprioriMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());
    MineOutcome<Pattern> outcome;
    std::vector<Pattern>& out = outcome.patterns;
    AprioriTallies tallies;
    BudgetGuard guard(config.budget, config.max_patterns);
    // Coarse live-memory estimate: emitted patterns plus the per-level bitset
    // covers (the dominant allocation for dense databases).
    const std::size_t cover_bytes = (db.num_transactions() + 7) / 8;
    std::size_t out_bytes = 0;

    // L1.
    Level current;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        const std::size_t s = db.ItemSupport(i);
        if (s < min_sup) continue;
        current.itemsets.push_back({i});
        current.covers.push_back(db.ItemCover(i));
        current.supports.push_back(s);
    }

    std::size_t level = 1;
    while (!current.itemsets.empty() && level <= config.max_pattern_len &&
           guard.ok()) {
        ++tallies.levels;
        std::size_t covers_bytes = current.covers.size() * cover_bytes;
        for (std::size_t i = 0; i < current.itemsets.size(); ++i) {
            if (guard.Check(out.size(), out_bytes + covers_bytes) !=
                BudgetBreach::kNone) {
                break;
            }
            Pattern p;
            p.items = current.itemsets[i];
            p.support = current.supports[i];
            out_bytes += sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
            out.push_back(std::move(p));
        }
        if (!guard.ok()) break;
        if (level == config.max_pattern_len) break;

        // Candidate generation: join itemsets sharing a (k-1)-prefix. The
        // level's itemsets are produced in lexicographic order, so equal-prefix
        // runs are contiguous.
        std::vector<Itemset> prev_sorted = current.itemsets;
        std::sort(prev_sorted.begin(), prev_sorted.end());
        Level next;
        for (std::size_t a = 0; a < current.itemsets.size() && guard.ok(); ++a) {
            for (std::size_t b = a + 1; b < current.itemsets.size(); ++b) {
                if (guard.Check(out.size(), out_bytes + covers_bytes) !=
                    BudgetBreach::kNone) {
                    break;
                }
                const Itemset& x = current.itemsets[a];
                const Itemset& y = current.itemsets[b];
                if (!std::equal(x.begin(), x.end() - 1, y.begin(), y.end() - 1)) {
                    break;  // prefix run ended (lexicographic order)
                }
                Itemset cand = x;
                cand.push_back(y.back());
                if (cand[cand.size() - 2] > cand.back()) {
                    std::swap(cand[cand.size() - 2], cand[cand.size() - 1]);
                }
                ++tallies.subset_checks;
                if (!AllSubsetsFrequent(cand, prev_sorted)) continue;
                ++tallies.candidates_generated;
                BitVector cover = current.covers[a];
                cover &= db.ItemCover(cand.back());
                const std::size_t s = cover.Count();
                if (s < min_sup) continue;
                next.itemsets.push_back(std::move(cand));
                next.covers.push_back(std::move(cover));
                next.supports.push_back(s);
                covers_bytes += cover_bytes;
            }
        }
        if (!guard.ok()) break;
        current = std::move(next);
        ++level;
    }
    outcome.breach = guard.breach();
    if (outcome.truncated()) {
        FlushAprioriMetrics(tallies, out.size(), /*budget_abort=*/true);
        RecordBreach("fpm.apriori", outcome.breach,
                     static_cast<double>(out.size()));
        FilterPatterns(config, &out);
        return outcome;
    }
    FilterPatterns(config, &out);
    FlushAprioriMetrics(tallies, out.size(), /*budget_abort=*/false);
    return outcome;
}

}  // namespace dfp
