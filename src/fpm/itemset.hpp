// Itemset and mined-pattern value types shared by all miners.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "data/transaction_db.hpp"

namespace dfp {

/// A sorted, duplicate-free list of item ids.
using Itemset = std::vector<ItemId>;

/// A mined pattern: the itemset plus the metadata the classification framework
/// needs (support, cover set, per-class counts). Miners fill items/support;
/// AttachMetadata() fills cover/class_counts against a reference database.
struct Pattern {
    Itemset items;
    /// Absolute support in the database the metadata was attached against.
    std::size_t support = 0;
    /// Rows of the reference database containing the pattern.
    BitVector cover;
    /// Per-class row counts of the cover.
    std::vector<std::size_t> class_counts;

    std::size_t length() const { return items.size(); }

    /// Relative support given the reference database size.
    double RelativeSupport(std::size_t num_transactions) const {
        return num_transactions == 0
                   ? 0.0
                   : static_cast<double>(support) /
                         static_cast<double>(num_transactions);
    }

    /// Class with the highest count in the cover (ties → smallest label).
    ClassLabel MajorityClass() const;

    /// Confidence of the rule (items → MajorityClass()).
    double Confidence() const;
};

/// True iff `a` ⊆ `b` (both sorted).
bool IsSubsetOf(const Itemset& a, const Itemset& b);

/// Canonical order: by length, then lexicographically by items.
bool PatternLess(const Pattern& a, const Pattern& b);

/// Sorts patterns into the canonical order (for comparisons in tests).
void SortPatterns(std::vector<Pattern>& patterns);

/// "{a0=v1, a3=v0}" using the database's item names, or "{3, 17}" without one.
std::string ItemsetToString(const Itemset& items,
                            const TransactionDatabase* db = nullptr);

/// Computes cover and class_counts (and re-derives support) for each pattern
/// against `db`. Use after mining — including after mining on a class
/// partition, to re-anchor the patterns on the full training database.
void AttachMetadata(const TransactionDatabase& db, std::vector<Pattern>* patterns);

}  // namespace dfp
