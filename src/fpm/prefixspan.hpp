// Sequential pattern mining with PrefixSpan (Pei et al., ICDE'01).
//
// The paper's conclusion names sequences as the next pattern language for the
// framework ("The framework is also applicable to more complex patterns,
// including sequences and graphs"). This module provides that extension: a
// class-labelled sequence database, PrefixSpan mining of frequent
// subsequences, and the subsequence-containment test used to map sequences
// into the binary feature space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "data/dataset.hpp"
#include "data/encoder.hpp"

namespace dfp {

/// A sequence is an ordered list of items (repeats allowed). Patterns are
/// subsequences: order-preserving, not necessarily contiguous.
using Sequence = std::vector<ItemId>;

/// Class-labelled sequence database.
class SequenceDatabase {
  public:
    SequenceDatabase() = default;
    SequenceDatabase(std::vector<Sequence> sequences, std::vector<ClassLabel> labels,
                     std::size_t num_items, std::size_t num_classes);

    std::size_t size() const { return labels_.size(); }
    std::size_t num_items() const { return num_items_; }
    std::size_t num_classes() const { return num_classes_; }
    const Sequence& sequence(std::size_t i) const { return sequences_[i]; }
    ClassLabel label(std::size_t i) const { return labels_[i]; }
    const std::vector<ClassLabel>& labels() const { return labels_; }

    std::vector<std::size_t> ClassCounts() const;
    SequenceDatabase FilterByClass(ClassLabel c) const;
    SequenceDatabase Subset(const std::vector<std::size_t>& rows) const;

  private:
    std::vector<Sequence> sequences_;
    std::vector<ClassLabel> labels_;
    std::size_t num_items_ = 0;
    std::size_t num_classes_ = 0;
};

/// True iff `pattern` is a subsequence of `sequence`.
bool IsSubsequence(const Sequence& pattern, const Sequence& sequence);

/// A mined sequential pattern with its absolute support.
struct SequentialPattern {
    Sequence items;
    std::size_t support = 0;
};

struct PrefixSpanConfig {
    double min_sup_rel = -1.0;   ///< relative threshold; negative → absolute
    std::size_t min_sup_abs = 1;
    std::size_t max_pattern_len = 8;
    std::size_t max_patterns = 5'000'000;
    ExecutionBudget budget;  ///< deadline / memory / cancellation limits
};

/// Mines frequent subsequences of `db` with PrefixSpan (pseudo-projected
/// databases), honouring config.budget cooperatively. On a breach, the
/// outcome carries the subsequences found so far (each support-correct).
Result<MineOutcome<SequentialPattern>> MineSequencesBudgeted(
    const SequenceDatabase& db, const PrefixSpanConfig& config);

/// Strict all-or-nothing wrapper: any breach becomes Cancelled /
/// ResourceExhausted.
Result<std::vector<SequentialPattern>> MineSequences(const SequenceDatabase& db,
                                                     const PrefixSpanConfig& config);

/// Seeded synthetic sequence generator: per class, hidden "motif"
/// subsequences are planted into random background sequences — the sequence
/// analogue of the itemset generator's concepts.
struct SequenceSpec {
    std::size_t rows = 400;
    std::size_t classes = 2;
    std::size_t alphabet = 12;
    std::size_t length_min = 8;
    std::size_t length_max = 16;
    std::size_t motifs_per_class = 2;
    std::size_t motif_len = 3;
    double carrier_prob = 0.7;
    double label_noise = 0.02;
    std::uint64_t seed = 1;
};

SequenceDatabase GenerateSequences(const SequenceSpec& spec);

}  // namespace dfp
