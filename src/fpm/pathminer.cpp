#include "fpm/pathminer.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.hpp"

namespace dfp {

bool PathPattern::operator<(const PathPattern& other) const {
    if (vertices != other.vertices) return vertices < other.vertices;
    return edges < other.edges;
}

std::string PathPattern::ToString() const {
    std::string out = StrFormat("(%u)", vertices.empty() ? 0u : vertices[0]);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        out += StrFormat("-[%u]-(%u)", edges[i], vertices[i + 1]);
    }
    return out;
}

void PathPattern::Canonicalize() {
    PathPattern reversed;
    reversed.vertices.assign(vertices.rbegin(), vertices.rend());
    reversed.edges.assign(edges.rbegin(), edges.rend());
    if (reversed < *this) {
        vertices = std::move(reversed.vertices);
        edges = std::move(reversed.edges);
    }
}

namespace {

// Backtracking match of pattern position `pos` (vertex index) with graph
// vertex `at`, `used` marking vertices on the current path.
bool MatchFrom(const LabeledGraph& graph, const PathPattern& pattern,
               std::size_t pos, std::size_t at, std::vector<char>& used) {
    if (pos == pattern.vertices.size() - 1) return true;
    used[at] = 1;
    for (const auto& edge : graph.neighbours(at)) {
        if (used[edge.to]) continue;
        if (edge.label != pattern.edges[pos]) continue;
        if (graph.vertex_label(edge.to) != pattern.vertices[pos + 1]) continue;
        if (MatchFrom(graph, pattern, pos + 1, edge.to, used)) {
            used[at] = 0;
            return true;
        }
    }
    used[at] = 0;
    return false;
}

}  // namespace

bool ContainsPath(const LabeledGraph& graph, const PathPattern& pattern) {
    if (pattern.vertices.empty()) return true;
    std::vector<char> used(graph.num_vertices(), 0);
    for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
        if (graph.vertex_label(v) != pattern.vertices[0]) continue;
        if (MatchFrom(graph, pattern, 0, v, used)) return true;
    }
    return false;
}

Result<MineOutcome<PathPattern>> MinePathsBudgeted(const GraphDatabase& db,
                                                   const PathMinerConfig& config) {
    std::size_t min_sup = config.min_sup_abs;
    if (config.min_sup_rel >= 0.0) {
        min_sup = static_cast<std::size_t>(
            std::ceil(config.min_sup_rel * static_cast<double>(db.size())));
    }
    min_sup = std::max<std::size_t>(min_sup, 1);

    BudgetGuard guard(config.budget, config.max_patterns);
    MineOutcome<PathPattern> outcome;
    std::vector<PathPattern>& out = outcome.patterns;
    std::size_t est_bytes = 0;  // coarse: emitted patterns + dedup set entries
    // Level k patterns together with their supporting graph ids, so level k+1
    // only re-tests the graphs that contained the parent (anti-monotone).
    struct Open {
        PathPattern pattern;
        std::vector<std::uint32_t> graphs;
    };
    std::vector<Open> frontier;

    // Level 0: single vertex labels.
    for (VertexLabel vl = 0; vl < db.num_vertex_labels(); ++vl) {
        Open open;
        open.pattern.vertices = {vl};
        for (std::uint32_t g = 0; g < db.size(); ++g) {
            if (ContainsPath(db.graph(g), open.pattern)) open.graphs.push_back(g);
        }
        if (open.graphs.size() < min_sup) continue;
        open.pattern.support = open.graphs.size();
        out.push_back(open.pattern);
        frontier.push_back(std::move(open));
    }

    std::set<PathPattern> seen;
    for (std::size_t level = 0;
         level < config.max_edges && !frontier.empty() && guard.ok(); ++level) {
        std::vector<Open> next;
        for (const Open& parent : frontier) {
            if (!guard.ok()) break;
            // Both ends must be extended: a canonical path's parent may only
            // be stored in the orientation that requires prepending. The
            // `seen` set dedups the two orientations of each child.
            for (int end = 0; end < 2 && guard.ok(); ++end) {
                for (EdgeLabel el = 0; el < db.num_edge_labels() && guard.ok();
                     ++el) {
                    for (VertexLabel vl = 0; vl < db.num_vertex_labels(); ++vl) {
                        if (guard.Check(out.size(), est_bytes) !=
                            BudgetBreach::kNone) {
                            break;
                        }
                        Open child;
                        if (end == 0) {
                            child.pattern.vertices = parent.pattern.vertices;
                            child.pattern.vertices.push_back(vl);
                            child.pattern.edges = parent.pattern.edges;
                            child.pattern.edges.push_back(el);
                        } else {
                            child.pattern.vertices = {vl};
                            child.pattern.vertices.insert(
                                child.pattern.vertices.end(),
                                parent.pattern.vertices.begin(),
                                parent.pattern.vertices.end());
                            child.pattern.edges = {el};
                            child.pattern.edges.insert(child.pattern.edges.end(),
                                                       parent.pattern.edges.begin(),
                                                       parent.pattern.edges.end());
                        }
                        child.pattern.Canonicalize();
                        if (!seen.insert(child.pattern).second) continue;
                        est_bytes += sizeof(PathPattern) +
                                     child.pattern.vertices.size() *
                                         sizeof(VertexLabel) +
                                     child.pattern.edges.size() * sizeof(EdgeLabel);
                        for (std::uint32_t g : parent.graphs) {
                            if (ContainsPath(db.graph(g), child.pattern)) {
                                child.graphs.push_back(g);
                            }
                        }
                        if (child.graphs.size() < min_sup) continue;
                        child.pattern.support = child.graphs.size();
                        out.push_back(child.pattern);
                        next.push_back(std::move(child));
                    }
                }
            }
        }
        frontier = std::move(next);
    }
    outcome.breach = guard.breach();
    if (outcome.truncated()) {
        RecordBreach("fpm.pathminer", outcome.breach,
                     static_cast<double>(out.size()));
    }
    return outcome;
}

Result<std::vector<PathPattern>> MinePaths(const GraphDatabase& db,
                                           const PathMinerConfig& config) {
    auto outcome = MinePathsBudgeted(db, config);
    if (!outcome.ok()) return outcome.status();
    MineOutcome<PathPattern> mined = std::move(outcome).value();
    if (mined.breach == BudgetBreach::kCancelled) {
        return Status::Cancelled(StrFormat("path miner cancelled after %zu patterns",
                                           mined.patterns.size()));
    }
    if (mined.truncated()) {
        return Status::ResourceExhausted(
            StrFormat("path miner stopped on %s after %zu patterns",
                      BudgetBreachName(mined.breach), mined.patterns.size()));
    }
    return std::move(mined.patterns);
}

}  // namespace dfp
