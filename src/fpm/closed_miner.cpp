#include "fpm/closed_miner.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "fpm/fpgrowth.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

struct ClosedContext {
    const TransactionDatabase* db;
    std::vector<ItemId> frequent;  // ascending item ids, support >= min_sup
    std::size_t min_sup;
    BudgetGuard* guard = nullptr;
    std::size_t est_bytes = 0;    // coarse output-memory estimate for the guard
    std::vector<char> in_closed;  // membership of the current closed set
    // Per-depth cover slots, written in place with AssignAnd: the DFS holds a
    // reference to its depth's slot across the recursion, so this is sized to
    // the maximum depth up front and never reallocated mid-mine.
    std::vector<BitVector> cover_scratch;
    std::vector<Pattern>* out;
    // Set on parallel fan-out: pool-wide tallies so per-task guards enforce
    // the global pattern/memory caps. Null on the serial path.
    SharedMineProgress* shared = nullptr;
    // Instrumentation tallies, flushed to the registry once per Mine().
    std::size_t nodes_expanded = 0;   // prefix extensions whose support we took
    std::size_t closure_checks = 0;   // closure/subsumption scans
};

std::size_t GuardEmitted(const ClosedContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->emitted.load(std::memory_order_relaxed)
               : ctx.out->size();
}
std::size_t GuardBytes(const ClosedContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->est_bytes.load(std::memory_order_relaxed)
               : ctx.est_bytes;
}

void TallyEmission(ClosedContext& ctx, const Pattern& p) {
    const std::size_t bytes =
        sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    ctx.est_bytes += bytes;
    if (ctx.shared != nullptr) {
        ctx.shared->AddEmitted();
        ctx.shared->AddBytes(bytes);
    }
}

void FlushClosedMetrics(std::size_t nodes_expanded, std::size_t closure_checks,
                        std::size_t emitted, bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.nodes_expanded");
    static auto& closures =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.closure_checks");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.budget_aborts");
    nodes.Inc(nodes_expanded);
    closures.Inc(closure_checks);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Prefix-preserving closure extension DFS (LCM). `closed` is the current
// closed itemset (sorted), `tidset` its cover, `core` the extension item that
// produced it. Returns false when the execution budget fires.
bool ClosedDfs(ClosedContext& ctx, const Itemset& closed, const BitVector& tidset,
               ItemId core, std::size_t depth) {
    for (ItemId i : ctx.frequent) {
        if (i <= core) continue;  // prefix-preserving: extend past the core only
        if (ctx.in_closed[i]) continue;
        // Fused count first: extensions that die on min_sup never materialize
        // a cover (the common case), and survivors write into this depth's
        // reusable slot instead of allocating a fresh vector.
        const std::size_t support = tidset.AndCount(ctx.db->ItemCover(i));
        ++ctx.nodes_expanded;
        if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
            BudgetBreach::kNone) {
            return false;
        }
        if (support < ctx.min_sup) continue;
        BitVector& extended = ctx.cover_scratch[depth];
        extended.AssignAnd(tidset, ctx.db->ItemCover(i));

        // Closure: every frequent item whose cover contains the new tidset.
        // Prefix-preservation: no item < i may newly enter the closure.
        ++ctx.closure_checks;
        Itemset closure;
        bool prefix_ok = true;
        for (ItemId j : ctx.frequent) {
            if (ctx.in_closed[j]) {
                closure.push_back(j);  // closed ⊆ closure(extended) always
                continue;
            }
            if (extended.IsSubsetOf(ctx.db->ItemCover(j))) {
                if (j < i) {
                    prefix_ok = false;
                    break;
                }
                closure.push_back(j);
            }
        }
        if (!prefix_ok) continue;

        std::sort(closure.begin(), closure.end());
        Pattern p;
        p.items = closure;
        p.support = support;
        TallyEmission(ctx, p);
        ctx.out->push_back(std::move(p));

        // Note: recurse on the local `closure`, not out->back() — the output
        // vector may reallocate during recursion.
        for (ItemId j : closure) ctx.in_closed[j] = 1;
        const bool ok = ClosedDfs(ctx, closure, extended, i, depth + 1);
        // Restore membership to the parent closed set.
        std::fill(ctx.in_closed.begin(), ctx.in_closed.end(), 0);
        for (ItemId j : closed) ctx.in_closed[j] = 1;
        if (!ok) return false;
    }
    return true;
}

// One top-level LCM subproblem: the prefix-preserving extension of the root
// closure by item `i` and its whole DFS subtree. Requires ctx.in_closed ==
// membership of `root_closed` on entry; leaves it restored on exit. Returns
// false when the execution budget fires.
bool ClosedTopLevel(ClosedContext& ctx, const Itemset& root_closed, ItemId i) {
    const TransactionDatabase& db = *ctx.db;
    // The top-level tidset is the item's own cover — borrow it, don't copy.
    const BitVector& tidset = db.ItemCover(i);
    const std::size_t support = tidset.Count();
    ++ctx.nodes_expanded;
    if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
        BudgetBreach::kNone) {
        return false;
    }
    if (support < ctx.min_sup) return true;
    ++ctx.closure_checks;
    Itemset closure;
    bool prefix_ok = true;
    for (ItemId j : ctx.frequent) {
        if (ctx.in_closed[j]) {
            closure.push_back(j);
            continue;
        }
        if (tidset.IsSubsetOf(db.ItemCover(j))) {
            if (j < i) {
                prefix_ok = false;
                break;
            }
            closure.push_back(j);
        }
    }
    if (!prefix_ok) return true;
    std::sort(closure.begin(), closure.end());
    Pattern p;
    p.items = closure;
    p.support = support;
    TallyEmission(ctx, p);
    ctx.out->push_back(std::move(p));

    for (ItemId j : closure) ctx.in_closed[j] = 1;
    const bool ok = ClosedDfs(ctx, closure, tidset, i, /*depth=*/0);
    std::fill(ctx.in_closed.begin(), ctx.in_closed.end(), 0);
    for (ItemId j : root_closed) ctx.in_closed[j] = 1;
    return ok;
}

}  // namespace

Result<MineOutcome<Pattern>> ClosedMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t n = db.num_transactions();
    const std::size_t min_sup = ResolveMinSup(config, n);

    BudgetGuard guard(config.budget, config.max_patterns);
    MineOutcome<Pattern> outcome;
    std::vector<Pattern>& out = outcome.patterns;
    ClosedContext ctx;
    ctx.db = &db;
    ctx.min_sup = min_sup;
    ctx.guard = &guard;
    ctx.in_closed.assign(db.num_items(), 0);
    ctx.out = &out;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        if (db.ItemSupport(i) >= min_sup) ctx.frequent.push_back(i);
    }
    // Depth can never exceed the number of frequent items (each level adds at
    // least one item to the closed set).
    ctx.cover_scratch.assign(ctx.frequent.size(), BitVector());

    // Closure of the empty set: items present in every transaction.
    Itemset root_closed;
    for (ItemId i : ctx.frequent) {
        if (db.ItemSupport(i) == n) {
            root_closed.push_back(i);
            ctx.in_closed[i] = 1;
        }
    }
    if (!root_closed.empty() && n >= min_sup) {
        Pattern p;
        p.items = root_closed;
        p.support = n;
        out.push_back(std::move(p));
    }

    // Sentinel core: items are unsigned, so reuse the DFS with a "core" below
    // every item by running extensions for all frequent items not in the root
    // closure directly. Each top-level item spans an independent LCM
    // subproblem — the parallel fan-out unit.
    std::vector<ItemId> cores;
    for (ItemId i : ctx.frequent) {
        if (!ctx.in_closed[i]) cores.push_back(i);
    }
    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), cores.size());
    std::size_t nodes = 0;
    std::size_t closures = 0;

    if (threads <= 1) {
        // Serial path: today's code, bit for bit.
        bool ok = true;
        for (std::size_t k = 0; k < cores.size() && ok; ++k) {
            ok = ClosedTopLevel(ctx, root_closed, cores[k]);
        }
        if (!ok) outcome.breach = guard.breach();
        nodes = ctx.nodes_expanded;
        closures = ctx.closure_checks;
    } else {
        // Fan out: task k owns core item cores[k]'s subproblem with its own
        // closed-set store (in_closed scratch + output slot). LCM's
        // prefix-preservation makes the per-task CFI stores disjoint, so the
        // merge concatenates in core order (the serial emission sequence);
        // the subsumption pass below certifies the no-duplicates invariant.
        const std::size_t tasks_n = cores.size();
        std::vector<std::vector<Pattern>> slots(tasks_n);
        std::vector<ClosedContext> contexts(tasks_n);
        std::vector<BudgetBreach> breaches(tasks_n, BudgetBreach::kNone);
        SharedMineProgress progress;
        progress.AddEmitted(out.size());  // the root-closure pattern, if any
        DeadlineTimer timer(config.budget.time_budget_ms);

        ThreadPool pool(threads);
        TaskGroup group(pool);
        for (std::size_t k = 0; k < tasks_n; ++k) {
            group.Submit([&, k] {
                BudgetGuard task_guard(TaskBudget(config.budget, timer),
                                       config.max_patterns);
                ClosedContext& tctx = contexts[k];
                tctx.db = &db;
                tctx.frequent = ctx.frequent;
                tctx.min_sup = min_sup;
                tctx.guard = &task_guard;
                tctx.in_closed = ctx.in_closed;  // == root closure membership
                tctx.cover_scratch.assign(tctx.frequent.size(), BitVector());
                tctx.out = &slots[k];
                tctx.shared = &progress;
                if (!ClosedTopLevel(tctx, root_closed, cores[k])) {
                    breaches[k] = task_guard.breach();
                }
            });
        }
        group.Wait();

        std::size_t total = out.size();
        for (const ClosedContext& tctx : contexts) {
            nodes += tctx.nodes_expanded;
            closures += tctx.closure_checks;
        }
        for (const auto& slot : slots) total += slot.size();
        out.reserve(total);
        // Merge + subsumption pass: drop any itemset already merged. With
        // complete subproblems this drops nothing (closed sets are unique per
        // core item); it guards the invariant under mid-task truncation.
        std::unordered_set<std::string> seen;
        seen.reserve(total);
        auto key = [](const Itemset& items) {
            return std::string(reinterpret_cast<const char*>(items.data()),
                               items.size() * sizeof(ItemId));
        };
        for (const Pattern& p : out) seen.insert(key(p.items));
        for (std::size_t k = 0; k < tasks_n; ++k) {
            for (Pattern& p : slots[k]) {
                if (seen.insert(key(p.items)).second) {
                    out.push_back(std::move(p));
                }
            }
        }
        for (BudgetBreach b : breaches) {
            if (b != BudgetBreach::kNone) {
                outcome.breach = b;
                break;
            }
        }
    }

    if (outcome.truncated()) {
        FlushClosedMetrics(nodes, closures, out.size(), /*budget_abort=*/true);
        RecordBreach("fpm.closed", outcome.breach,
                     static_cast<double>(out.size()));
        DFP_LOG_WARN(StrFormat(
            "closed miner stopped on %s at %zu patterns (min_sup=%zu)",
            BudgetBreachName(outcome.breach), out.size(), min_sup));
        FilterPatterns(config, &out);
        return outcome;
    }
    FilterPatterns(config, &out);
    FlushClosedMetrics(nodes, closures, out.size(), /*budget_abort=*/false);
    return outcome;
}

Result<std::vector<Pattern>> BruteForceClosed(const TransactionDatabase& db,
                                              const MinerConfig& config) {
    FpGrowthMiner all_miner;
    MinerConfig all_config = config;
    all_config.max_pattern_len = std::numeric_limits<std::size_t>::max();
    all_config.include_singletons = true;
    auto result = all_miner.Mine(db, all_config);
    if (!result.ok()) return result.status();
    std::vector<Pattern> all = std::move(result).value();
    AttachMetadata(db, &all);

    std::vector<Pattern> closed;
    for (Pattern& p : all) {
        bool is_closed = true;
        for (ItemId j = 0; j < db.num_items() && is_closed; ++j) {
            if (std::binary_search(p.items.begin(), p.items.end(), j)) continue;
            // Adding j keeps the support ⇒ p is not closed.
            if (p.cover.AndCount(db.ItemCover(j)) == p.support) is_closed = false;
        }
        if (is_closed) closed.push_back(std::move(p));
    }
    FilterPatterns(config, &closed);
    return closed;
}

}  // namespace dfp
