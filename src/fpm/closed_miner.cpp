#include "fpm/closed_miner.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "fpm/fpgrowth.hpp"
#include "fpm/shard.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

struct ClosedContext {
    const TransactionDatabase* db;
    std::vector<ItemId> frequent;  // ascending item ids, support >= min_sup
    std::size_t min_sup;
    BudgetGuard* guard = nullptr;
    std::size_t est_bytes = 0;    // coarse output-memory estimate for the guard
    std::vector<char> in_closed;  // membership of the current closed set
    // Per-depth cover slots, written in place with AssignAnd: the DFS holds a
    // reference to its depth's slot across the recursion, so this is sized to
    // the maximum depth up front and never reallocated mid-mine.
    std::vector<BitVector> cover_scratch;
    std::vector<Pattern>* out;
    // Set on parallel fan-out: pool-wide tallies so per-task guards enforce
    // the global pattern/memory caps. Null on the serial path.
    SharedMineProgress* shared = nullptr;
    // Instrumentation tallies, flushed to the registry once per Mine().
    std::size_t nodes_expanded = 0;   // prefix extensions whose support we took
    std::size_t closure_checks = 0;   // closure/subsumption scans
};

std::size_t GuardEmitted(const ClosedContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->emitted.load(std::memory_order_relaxed)
               : ctx.out->size();
}
std::size_t GuardBytes(const ClosedContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->est_bytes.load(std::memory_order_relaxed)
               : ctx.est_bytes;
}

void TallyEmission(ClosedContext& ctx, const Pattern& p) {
    const std::size_t bytes =
        sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    ctx.est_bytes += bytes;
    if (ctx.shared != nullptr) {
        ctx.shared->AddEmitted();
        ctx.shared->AddBytes(bytes);
    }
}

void FlushClosedMetrics(std::size_t nodes_expanded, std::size_t closure_checks,
                        std::size_t emitted, bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.nodes_expanded");
    static auto& closures =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.closure_checks");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.closed.budget_aborts");
    nodes.Inc(nodes_expanded);
    closures.Inc(closure_checks);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Prefix-preserving closure extension DFS (LCM). `closed` is the current
// closed itemset (sorted), `tidset` its cover, `core` the extension item that
// produced it. Returns false when the execution budget fires.
bool ClosedDfs(ClosedContext& ctx, const Itemset& closed, const BitVector& tidset,
               ItemId core, std::size_t depth) {
    for (ItemId i : ctx.frequent) {
        if (i <= core) continue;  // prefix-preserving: extend past the core only
        if (ctx.in_closed[i]) continue;
        // Fused count first: extensions that die on min_sup never materialize
        // a cover (the common case), and survivors write into this depth's
        // reusable slot instead of allocating a fresh vector.
        const std::size_t support = tidset.AndCount(ctx.db->ItemCover(i));
        ++ctx.nodes_expanded;
        if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
            BudgetBreach::kNone) {
            return false;
        }
        if (support < ctx.min_sup) continue;
        BitVector& extended = ctx.cover_scratch[depth];
        extended.AssignAnd(tidset, ctx.db->ItemCover(i));

        // Closure: every frequent item whose cover contains the new tidset.
        // Prefix-preservation: no item < i may newly enter the closure.
        ++ctx.closure_checks;
        Itemset closure;
        bool prefix_ok = true;
        for (ItemId j : ctx.frequent) {
            if (ctx.in_closed[j]) {
                closure.push_back(j);  // closed ⊆ closure(extended) always
                continue;
            }
            if (extended.IsSubsetOf(ctx.db->ItemCover(j))) {
                if (j < i) {
                    prefix_ok = false;
                    break;
                }
                closure.push_back(j);
            }
        }
        if (!prefix_ok) continue;

        std::sort(closure.begin(), closure.end());
        Pattern p;
        p.items = closure;
        p.support = support;
        TallyEmission(ctx, p);
        ctx.out->push_back(std::move(p));

        // Note: recurse on the local `closure`, not out->back() — the output
        // vector may reallocate during recursion.
        for (ItemId j : closure) ctx.in_closed[j] = 1;
        const bool ok = ClosedDfs(ctx, closure, extended, i, depth + 1);
        // Restore membership to the parent closed set.
        std::fill(ctx.in_closed.begin(), ctx.in_closed.end(), 0);
        for (ItemId j : closed) ctx.in_closed[j] = 1;
        if (!ok) return false;
    }
    return true;
}

// One top-level LCM subproblem: the prefix-preserving extension of the root
// closure by item `i` and its whole DFS subtree. Requires ctx.in_closed ==
// membership of `root_closed` on entry; leaves it restored on exit. Returns
// false when the execution budget fires.
bool ClosedTopLevel(ClosedContext& ctx, const Itemset& root_closed, ItemId i) {
    const TransactionDatabase& db = *ctx.db;
    // The top-level tidset is the item's own cover — borrow it, don't copy.
    const BitVector& tidset = db.ItemCover(i);
    const std::size_t support = tidset.Count();
    ++ctx.nodes_expanded;
    if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
        BudgetBreach::kNone) {
        return false;
    }
    if (support < ctx.min_sup) return true;
    ++ctx.closure_checks;
    Itemset closure;
    bool prefix_ok = true;
    for (ItemId j : ctx.frequent) {
        if (ctx.in_closed[j]) {
            closure.push_back(j);
            continue;
        }
        if (tidset.IsSubsetOf(db.ItemCover(j))) {
            if (j < i) {
                prefix_ok = false;
                break;
            }
            closure.push_back(j);
        }
    }
    if (!prefix_ok) return true;
    std::sort(closure.begin(), closure.end());
    Pattern p;
    p.items = closure;
    p.support = support;
    TallyEmission(ctx, p);
    ctx.out->push_back(std::move(p));

    for (ItemId j : closure) ctx.in_closed[j] = 1;
    const bool ok = ClosedDfs(ctx, closure, tidset, i, /*depth=*/0);
    std::fill(ctx.in_closed.begin(), ctx.in_closed.end(), 0);
    for (ItemId j : root_closed) ctx.in_closed[j] = 1;
    return ok;
}

// ---------------------------------------------------------------------------
// Parallel path: recursive LCM decomposition with sharded emission
// (DESIGN.md §17). The DFS mirrors ClosedDfs/ClosedTopLevel exactly — same
// extension order, same closure/prefix-preservation scans, same guard
// placement — but a closure subtree whose estimated work (tidset rows ×
// remaining extension items) exceeds the split threshold is copied into a
// heap-owned holder and re-submitted to the TaskGroup. Workers reuse
// per-slot membership/cover scratch across tasks; emissions land in
// DFS-position-keyed shards whose merge reproduces the serial emission
// sequence bit for bit.
// ---------------------------------------------------------------------------

// A spawned closure subtree: the closed set, its cover (copied — the
// spawning task's per-depth cover slot is overwritten as it continues), and
// the core item / depth the child DFS resumes from.
struct ClosedSubtreeHolder {
    Itemset closed;
    BitVector tidset;
    ItemId core = 0;
    std::size_t depth = 0;
};

// Per-slot scratch: closed-set membership and per-depth cover slots, both
// re-initialized per task (membership from the task's holder, covers only
// grown — the bit storage itself is reused).
struct ParClosedScratch {
    std::vector<char> in_closed;
    std::vector<BitVector> cover_scratch;
};

struct ParClosedShared {
    const TransactionDatabase* db = nullptr;
    std::vector<ItemId> frequent;
    std::size_t min_sup = 0;
    std::size_t max_patterns = 0;
    std::size_t split_threshold = 0;
    const ExecutionBudget* budget = nullptr;
    DeadlineTimer timer;
    SharedMineProgress progress;
    ShardCollector shards;
    TaskGroup* group = nullptr;
    WorkerLocal<ParClosedScratch>* scratch = nullptr;
    std::size_t num_workers = 0;
    std::atomic<int> breach{static_cast<int>(BudgetBreach::kNone)};
    std::atomic<std::uint64_t> nodes{0};
    std::atomic<std::uint64_t> closures{0};

    ParClosedShared(const MinerConfig& config, std::size_t min_sup_in)
        : min_sup(min_sup_in),
          max_patterns(config.max_patterns),
          split_threshold(config.split_work_threshold),
          budget(&config.budget),
          timer(config.budget.time_budget_ms) {}

    void RecordFirstBreach(BudgetBreach b) {
        int expected = static_cast<int>(BudgetBreach::kNone);
        breach.compare_exchange_strong(expected, static_cast<int>(b),
                                       std::memory_order_relaxed);
    }
};

struct ParClosedCtx {
    ParClosedShared* sh;
    BudgetGuard* guard;
    ShardEmitter* emitter;
    ParClosedScratch* scratch;
    std::size_t slot;
    std::size_t nodes = 0;
    std::size_t closure_checks = 0;
};

void SpawnClosedSubtree(ParClosedCtx& ctx, const Itemset& closure,
                        const BitVector& tidset, ItemId core,
                        std::size_t depth);

bool ParClosedDfs(ParClosedCtx& ctx, const Itemset& closed,
                  const BitVector& tidset, ItemId core, std::size_t depth) {
    ParClosedShared& sh = *ctx.sh;
    std::vector<char>& in_closed = ctx.scratch->in_closed;
    for (std::size_t fi = 0; fi < sh.frequent.size(); ++fi) {
        const ItemId i = sh.frequent[fi];
        if (i <= core) continue;
        if (in_closed[i]) continue;
        const std::size_t support = tidset.AndCount(sh.db->ItemCover(i));
        ++ctx.nodes;
        if (ctx.guard->Check(
                sh.progress.emitted.load(std::memory_order_relaxed),
                sh.progress.est_bytes.load(std::memory_order_relaxed)) !=
            BudgetBreach::kNone) {
            return false;
        }
        if (support < sh.min_sup) continue;
        BitVector& extended = ctx.scratch->cover_scratch[depth];
        extended.AssignAnd(tidset, sh.db->ItemCover(i));

        ++ctx.closure_checks;
        Itemset closure;
        bool prefix_ok = true;
        for (ItemId j : sh.frequent) {
            if (in_closed[j]) {
                closure.push_back(j);
                continue;
            }
            if (extended.IsSubsetOf(sh.db->ItemCover(j))) {
                if (j < i) {
                    prefix_ok = false;
                    break;
                }
                closure.push_back(j);
            }
        }
        if (!prefix_ok) continue;

        std::sort(closure.begin(), closure.end());
        ctx.emitter->PushRank(static_cast<std::uint32_t>(fi));
        Pattern p;
        p.items = closure;
        p.support = support;
        const std::size_t bytes =
            sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
        sh.progress.AddEmitted();
        sh.progress.AddBytes(bytes);
        ctx.emitter->Emit(std::move(p));

        // Estimated subtree work: cover rows × extension items still ahead.
        const std::size_t est = support * (sh.frequent.size() - fi);
        if (est > sh.split_threshold) {
            SpawnClosedSubtree(ctx, closure, extended, i, depth + 1);
        } else {
            for (ItemId j : closure) in_closed[j] = 1;
            const bool ok = ParClosedDfs(ctx, closure, extended, i, depth + 1);
            std::fill(in_closed.begin(), in_closed.end(), 0);
            for (ItemId j : closed) in_closed[j] = 1;
            if (!ok) {
                ctx.emitter->PopRank();
                return false;
            }
        }
        ctx.emitter->PopRank();
    }
    return true;
}

void RunClosedSubtreeTask(ParClosedShared* sh,
                          std::shared_ptr<ClosedSubtreeHolder> holder,
                          ShardKey path, std::size_t slot) {
    ParClosedScratch& scratch = sh->scratch->At(slot);
    scratch.in_closed.assign(sh->db->num_items(), 0);
    for (ItemId j : holder->closed) scratch.in_closed[j] = 1;
    if (scratch.cover_scratch.size() < sh->frequent.size()) {
        scratch.cover_scratch.resize(sh->frequent.size());
    }
    BudgetGuard guard(TaskBudget(*sh->budget, sh->timer), sh->max_patterns);
    ShardEmitter emitter(&sh->shards, std::move(path));
    ParClosedCtx ctx{sh, &guard, &emitter, &scratch, slot};
    if (!ParClosedDfs(ctx, holder->closed, holder->tidset, holder->core,
                      holder->depth)) {
        sh->RecordFirstBreach(guard.breach());
    }
    emitter.Flush();
    sh->nodes.fetch_add(ctx.nodes, std::memory_order_relaxed);
    sh->closures.fetch_add(ctx.closure_checks, std::memory_order_relaxed);
}

void SpawnClosedSubtree(ParClosedCtx& ctx, const Itemset& closure,
                        const BitVector& tidset, ItemId core,
                        std::size_t depth) {
    ParClosedShared& sh = *ctx.sh;
    auto holder = std::make_shared<ClosedSubtreeHolder>();
    holder->closed = closure;
    holder->tidset = tidset;
    holder->core = core;
    holder->depth = depth;
    ctx.emitter->Flush();  // contiguity rule: shard ends at the spawn
    ShardKey child_path = ctx.emitter->path();
    const std::size_t from =
        ctx.slot < sh.num_workers ? ctx.slot : ThreadPool::kNoQueue;
    sh.group->SubmitSlotted(
        [sh_ptr = &sh, holder = std::move(holder),
         child_path = std::move(child_path)](std::size_t slot) mutable {
            RunClosedSubtreeTask(sh_ptr, std::move(holder),
                                 std::move(child_path), slot);
        },
        from);
}

// The root task: iterates the top-level core items in serial order, emitting
// each core's closure and descending (inline or via split) into its subtree.
void RunClosedRootTask(ParClosedShared* sh, const Itemset& root_closed,
                       const std::vector<ItemId>& cores, std::size_t slot) {
    ParClosedScratch& scratch = sh->scratch->At(slot);
    scratch.in_closed.assign(sh->db->num_items(), 0);
    for (ItemId j : root_closed) scratch.in_closed[j] = 1;
    if (scratch.cover_scratch.size() < sh->frequent.size()) {
        scratch.cover_scratch.resize(sh->frequent.size());
    }
    BudgetGuard guard(TaskBudget(*sh->budget, sh->timer), sh->max_patterns);
    ShardEmitter emitter(&sh->shards, {});
    ParClosedCtx ctx{sh, &guard, &emitter, &scratch, slot};
    const TransactionDatabase& db = *sh->db;
    bool ok = true;
    for (std::size_t k = 0; k < cores.size() && ok; ++k) {
        const ItemId i = cores[k];
        // Top-level tidset: the item's own cover — borrowed, not copied.
        const BitVector& tidset = db.ItemCover(i);
        const std::size_t support = tidset.Count();
        ++ctx.nodes;
        if (guard.Check(sh->progress.emitted.load(std::memory_order_relaxed),
                        sh->progress.est_bytes.load(
                            std::memory_order_relaxed)) !=
            BudgetBreach::kNone) {
            ok = false;
            break;
        }
        if (support < sh->min_sup) continue;
        ++ctx.closure_checks;
        Itemset closure;
        bool prefix_ok = true;
        for (ItemId j : sh->frequent) {
            if (scratch.in_closed[j]) {
                closure.push_back(j);
                continue;
            }
            if (tidset.IsSubsetOf(db.ItemCover(j))) {
                if (j < i) {
                    prefix_ok = false;
                    break;
                }
                closure.push_back(j);
            }
        }
        if (!prefix_ok) continue;
        std::sort(closure.begin(), closure.end());
        emitter.PushRank(static_cast<std::uint32_t>(k));
        Pattern p;
        p.items = closure;
        p.support = support;
        const std::size_t bytes =
            sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
        sh->progress.AddEmitted();
        sh->progress.AddBytes(bytes);
        emitter.Emit(std::move(p));

        const std::size_t est = support * sh->frequent.size();
        if (est > sh->split_threshold) {
            SpawnClosedSubtree(ctx, closure, tidset, i, /*depth=*/0);
        } else {
            for (ItemId j : closure) scratch.in_closed[j] = 1;
            ok = ParClosedDfs(ctx, closure, tidset, i, /*depth=*/0);
            std::fill(scratch.in_closed.begin(), scratch.in_closed.end(), 0);
            for (ItemId j : root_closed) scratch.in_closed[j] = 1;
        }
        emitter.PopRank();
    }
    if (!ok) sh->RecordFirstBreach(guard.breach());
    emitter.Flush();
    sh->nodes.fetch_add(ctx.nodes, std::memory_order_relaxed);
    sh->closures.fetch_add(ctx.closure_checks, std::memory_order_relaxed);
}

}  // namespace

Result<MineOutcome<Pattern>> ClosedMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t n = db.num_transactions();
    const std::size_t min_sup = ResolveMinSup(config, n);

    BudgetGuard guard(config.budget, config.max_patterns);
    MineOutcome<Pattern> outcome;
    std::vector<Pattern>& out = outcome.patterns;
    ClosedContext ctx;
    ctx.db = &db;
    ctx.min_sup = min_sup;
    ctx.guard = &guard;
    ctx.in_closed.assign(db.num_items(), 0);
    ctx.out = &out;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        if (db.ItemSupport(i) >= min_sup) ctx.frequent.push_back(i);
    }
    // Depth can never exceed the number of frequent items (each level adds at
    // least one item to the closed set).
    ctx.cover_scratch.assign(ctx.frequent.size(), BitVector());

    // Closure of the empty set: items present in every transaction.
    Itemset root_closed;
    for (ItemId i : ctx.frequent) {
        if (db.ItemSupport(i) == n) {
            root_closed.push_back(i);
            ctx.in_closed[i] = 1;
        }
    }
    if (!root_closed.empty() && n >= min_sup) {
        Pattern p;
        p.items = root_closed;
        p.support = n;
        out.push_back(std::move(p));
    }

    // Sentinel core: items are unsigned, so reuse the DFS with a "core" below
    // every item by running extensions for all frequent items not in the root
    // closure directly. Each top-level item spans an independent LCM
    // subproblem — the parallel fan-out unit.
    std::vector<ItemId> cores;
    for (ItemId i : ctx.frequent) {
        if (!ctx.in_closed[i]) cores.push_back(i);
    }
    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), cores.size());
    std::size_t nodes = 0;
    std::size_t closures = 0;

    if (threads <= 1) {
        // Serial path: today's code, bit for bit.
        bool ok = true;
        for (std::size_t k = 0; k < cores.size() && ok; ++k) {
            ok = ClosedTopLevel(ctx, root_closed, cores[k]);
        }
        if (!ok) outcome.breach = guard.breach();
        nodes = ctx.nodes_expanded;
        closures = ctx.closure_checks;
    } else {
        // Recursive decomposition (DESIGN.md §17): one root task walks the
        // core items in serial order; any closure subtree whose estimated
        // work exceeds the split threshold is copied into a holder and
        // re-submitted to the TaskGroup, so parallelism follows the
        // (exponentially skewed) subtree sizes instead of the first level's
        // core count. Workers reuse per-slot membership/cover scratch across
        // tasks; the DFS-keyed shard merge reproduces the serial emission
        // sequence bit for bit, and a defensive dedup pass guards the
        // closed-set uniqueness invariant under mid-task truncation.
        ThreadPool pool(threads);
        WorkerLocal<ParClosedScratch> scratch(pool.num_slots());
        TaskGroup group(pool);
        ParClosedShared shared(config, min_sup);
        shared.db = &db;
        shared.frequent = ctx.frequent;
        shared.group = &group;
        shared.scratch = &scratch;
        shared.num_workers = pool.num_workers();
        shared.progress.AddEmitted(out.size());  // root-closure pattern, if any
        group.SubmitSlotted([&shared, &root_closed, &cores](std::size_t slot) {
            RunClosedRootTask(&shared, root_closed, cores, slot);
        });
        group.Wait();

        std::vector<Pattern> merged;
        shared.shards.MergeInto(&merged);
        // Dedup: with complete subtrees closed sets are unique (LCM's
        // prefix-preservation), so this drops nothing; it guards the
        // invariant when a budget truncated some tasks mid-subtree.
        std::unordered_set<std::string> seen;
        seen.reserve(out.size() + merged.size());
        auto key = [](const Itemset& items) {
            return std::string(reinterpret_cast<const char*>(items.data()),
                               items.size() * sizeof(ItemId));
        };
        for (const Pattern& p : out) seen.insert(key(p.items));
        out.reserve(out.size() + merged.size());
        for (Pattern& p : merged) {
            if (seen.insert(key(p.items)).second) out.push_back(std::move(p));
        }
        outcome.breach = static_cast<BudgetBreach>(
            shared.breach.load(std::memory_order_relaxed));
        nodes = shared.nodes.load(std::memory_order_relaxed);
        closures = shared.closures.load(std::memory_order_relaxed);
    }

    if (outcome.truncated()) {
        FlushClosedMetrics(nodes, closures, out.size(), /*budget_abort=*/true);
        RecordBreach("fpm.closed", outcome.breach,
                     static_cast<double>(out.size()));
        DFP_LOG_WARN(StrFormat(
            "closed miner stopped on %s at %zu patterns (min_sup=%zu)",
            BudgetBreachName(outcome.breach), out.size(), min_sup));
        FilterPatterns(config, &out);
        return outcome;
    }
    FilterPatterns(config, &out);
    FlushClosedMetrics(nodes, closures, out.size(), /*budget_abort=*/false);
    return outcome;
}

Result<std::vector<Pattern>> BruteForceClosed(const TransactionDatabase& db,
                                              const MinerConfig& config) {
    FpGrowthMiner all_miner;
    MinerConfig all_config = config;
    all_config.max_pattern_len = std::numeric_limits<std::size_t>::max();
    all_config.include_singletons = true;
    auto result = all_miner.Mine(db, all_config);
    if (!result.ok()) return result.status();
    std::vector<Pattern> all = std::move(result).value();
    AttachMetadata(db, &all);

    std::vector<Pattern> closed;
    for (Pattern& p : all) {
        bool is_closed = true;
        for (ItemId j = 0; j < db.num_items() && is_closed; ++j) {
            if (std::binary_search(p.items.begin(), p.items.end(), j)) continue;
            // Adding j keeps the support ⇒ p is not closed.
            if (p.cover.AndCount(db.ItemCover(j)) == p.support) is_closed = false;
        }
        if (is_closed) closed.push_back(std::move(p));
    }
    FilterPatterns(config, &closed);
    return closed;
}

}  // namespace dfp
