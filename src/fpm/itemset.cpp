#include "fpm/itemset.hpp"

#include <algorithm>

namespace dfp {

ClassLabel Pattern::MajorityClass() const {
    std::size_t best = 0;
    for (std::size_t c = 1; c < class_counts.size(); ++c) {
        if (class_counts[c] > class_counts[best]) best = c;
    }
    return static_cast<ClassLabel>(best);
}

double Pattern::Confidence() const {
    if (support == 0 || class_counts.empty()) return 0.0;
    return static_cast<double>(class_counts[MajorityClass()]) /
           static_cast<double>(support);
}

bool IsSubsetOf(const Itemset& a, const Itemset& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool PatternLess(const Pattern& a, const Pattern& b) {
    if (a.items.size() != b.items.size()) return a.items.size() < b.items.size();
    return a.items < b.items;
}

void SortPatterns(std::vector<Pattern>& patterns) {
    std::sort(patterns.begin(), patterns.end(), PatternLess);
}

std::string ItemsetToString(const Itemset& items, const TransactionDatabase* db) {
    std::string out = "{";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ", ";
        out += (db != nullptr) ? db->ItemName(items[i]) : std::to_string(items[i]);
    }
    out += "}";
    return out;
}

void AttachMetadata(const TransactionDatabase& db, std::vector<Pattern>* patterns) {
    for (Pattern& p : *patterns) {
        p.cover = db.CoverOf(p.items);
        p.support = p.cover.Count();
        p.class_counts = db.ClassCountsOf(p.cover);
    }
}

}  // namespace dfp
