// Closed frequent-itemset mining.
//
// The paper uses FPClose (Grahne & Zhu, FIMI'03) to generate closed patterns;
// closedness matters to the framework because a non-closed pattern is fully
// redundant w.r.t. its closure under the Eq. 9 redundancy measure (identical
// cover ⇒ maximal Jaccard). We implement the LCM-style prefix-preserving
// closure extension (Uno et al.) over vertical bit vectors: it enumerates
// exactly the closed frequent itemsets — the same output as FPClose — with
// polynomial delay and no subsumption store.
#pragma once

#include "fpm/miner.hpp"

namespace dfp {

/// Mines closed frequent itemsets (FPClose-equivalent output).
class ClosedMiner : public Miner {
  public:
    std::string Name() const override { return "closed"; }
    Result<MineOutcome<Pattern>> MineBudgeted(
        const TransactionDatabase& db, const MinerConfig& config) const override;
};

/// Reference implementation for tests: mines all frequent itemsets with the
/// given miner and keeps those whose support strictly drops for every
/// superset-by-one — O(F · d) but obviously correct.
Result<std::vector<Pattern>> BruteForceClosed(const TransactionDatabase& db,
                                              const MinerConfig& config);

}  // namespace dfp
