// Common interface for frequent-itemset miners.
//
// Four miners implement it:
//  * FpGrowthMiner  — FP-tree pattern growth, all frequent itemsets.
//  * AprioriMiner   — level-wise candidate generation (reference baseline).
//  * EclatMiner     — vertical bitset DFS (reference baseline).
//  * ClosedMiner    — closed frequent itemsets only (LCM-style prefix-
//                     preserving closure extension; output semantics identical
//                     to FPClose, which the paper uses).
//
// All miners honour an ExecutionBudget (pattern cap, wall-clock deadline,
// estimated-memory cap, cancellation) so that runaway enumerations (e.g. the
// paper's min_sup = 1 rows in Tables 3–5) stop cooperatively. The primary
// entry point, MineBudgeted(), returns whatever was enumerated before the
// breach (truncated sets are still support-correct); the strict Mine()
// wrapper converts any breach into an error Status for callers that need
// all-or-nothing semantics.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"

namespace dfp {

/// Mining parameters. Exactly one of min_sup_rel / min_sup_abs is used:
/// min_sup_rel if non-negative, otherwise min_sup_abs.
struct MinerConfig {
    /// Relative min_sup θ0 in [0, 1]; negative means "use min_sup_abs".
    double min_sup_rel = -1.0;
    /// Absolute min_sup (count); ignored when min_sup_rel >= 0.
    std::size_t min_sup_abs = 1;
    /// Maximum pattern length emitted (ClosedMiner applies it as a post-filter
    /// since truncating closed patterns would change closure semantics).
    std::size_t max_pattern_len = std::numeric_limits<std::size_t>::max();
    /// Safety cap on emitted patterns; the effective cap is the min of this
    /// and budget.max_patterns. MineBudgeted() truncates here; Mine() fails.
    std::size_t max_patterns = 20'000'000;
    /// Emit single-item patterns too (the framework's feature space is I ∪ F,
    /// so singletons are usually redundant as patterns; default keeps them).
    bool include_singletons = true;
    /// Worker threads for the mining fan-out (FP-growth / Eclat / closed
    /// decompose recursively over conditional subproblems; Apriori stays
    /// level-wise serial). 1 = today's serial code exactly;
    /// 0 = hardware_concurrency. The complete pattern set — and its emission
    /// order — is identical for every thread count; only budget-truncated
    /// runs may differ, and those are subsequences of the serial emission
    /// sequence (see DESIGN.md §17).
    std::size_t num_threads = 1;
    /// Recursive-split granularity for the parallel miners: a conditional
    /// subproblem whose estimated work (conditional-base rows × remaining
    /// items) exceeds this re-submits to the task pool instead of being mined
    /// inline by its discoverer. Lower = more, finer tasks (tests use 1 to
    /// force splits everywhere); the default keeps task overhead under ~1% on
    /// the bench corpus while still decomposing every first- and second-level
    /// subtree.
    std::size_t split_work_threshold = 8192;
    /// Execution limits (deadline, memory, cancellation). Default = unlimited.
    ExecutionBudget budget;
};

/// Resolves the effective absolute support threshold (always >= 1).
std::size_t ResolveMinSup(const MinerConfig& config, std::size_t num_transactions);

/// Abstract frequent-itemset miner.
class Miner {
  public:
    virtual ~Miner() = default;

    /// Short identifier ("fpgrowth", "closed", ...).
    virtual std::string Name() const = 0;

    /// Mines patterns from `db`, honouring config.budget cooperatively. On
    /// success every pattern has items + support filled (covers/class counts
    /// are attached by the caller when needed). If a budget fired, the
    /// outcome carries the patterns enumerated so far plus the breach —
    /// each emitted pattern still has its exact support.
    virtual Result<MineOutcome<Pattern>> MineBudgeted(
        const TransactionDatabase& db, const MinerConfig& config) const = 0;

    /// Strict all-or-nothing wrapper over MineBudgeted(): any breach becomes
    /// an error (Cancelled for a fired CancelToken, ResourceExhausted
    /// otherwise). Existing callers that cannot use partial sets keep these
    /// semantics.
    Result<std::vector<Pattern>> Mine(const TransactionDatabase& db,
                                      const MinerConfig& config) const;
};

/// Applies config.include_singletons / max_pattern_len as post-filters.
void FilterPatterns(const MinerConfig& config, std::vector<Pattern>* patterns);

}  // namespace dfp
