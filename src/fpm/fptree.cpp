#include "fpm/fptree.hpp"

#include <algorithm>
#include <unordered_map>

namespace dfp {

FpTree::Node* FpTree::NewNode(ItemId item, Node* parent) {
    nodes_.push_back(Node{});
    Node* n = &nodes_.back();
    n->item = item;
    n->parent = parent;
    return n;
}

FpTree FpTree::Build(const std::vector<WeightedTransaction>& transactions,
                     std::size_t min_sup) {
    FpTree tree;

    // Pass 1: global item supports.
    std::unordered_map<ItemId, std::size_t> support;
    for (const auto& t : transactions) {
        for (ItemId i : t.items) support[i] += t.count;
    }

    // Frequent items, ordered by descending support (ties → ascending item id
    // for determinism).
    std::vector<std::pair<ItemId, std::size_t>> frequent;
    for (const auto& [item, count] : support) {
        if (count >= min_sup) frequent.emplace_back(item, count);
    }
    std::sort(frequent.begin(), frequent.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    if (frequent.empty()) return tree;

    tree.header_.reserve(frequent.size());
    // Rank of each frequent item in the f-list; used to order transactions.
    std::unordered_map<ItemId, std::size_t> rank;
    for (std::size_t r = 0; r < frequent.size(); ++r) {
        tree.header_.push_back({frequent[r].first, frequent[r].second, nullptr});
        rank[frequent[r].first] = r;
    }

    tree.root_ = tree.NewNode(/*item=*/0, /*parent=*/nullptr);

    // Pass 2: insert transactions with infrequent items dropped and the rest
    // sorted by f-list rank.
    std::vector<std::size_t> header_index;  // rank of item (parallel to path)
    std::vector<std::pair<std::size_t, ItemId>> ordered;
    for (const auto& t : transactions) {
        ordered.clear();
        for (ItemId i : t.items) {
            const auto it = rank.find(i);
            if (it != rank.end()) ordered.emplace_back(it->second, i);
        }
        if (ordered.empty()) continue;
        std::sort(ordered.begin(), ordered.end());
        std::vector<ItemId> path;
        header_index.clear();
        path.reserve(ordered.size());
        for (const auto& [r, i] : ordered) {
            path.push_back(i);
            header_index.push_back(r);
        }
        tree.Insert(path, t.count, header_index);
    }
    return tree;
}

void FpTree::Insert(const std::vector<ItemId>& ordered_items, std::size_t count,
                    const std::vector<std::size_t>& header_index) {
    Node* cur = root_;
    for (std::size_t k = 0; k < ordered_items.size(); ++k) {
        const ItemId item = ordered_items[k];
        Node* child = nullptr;
        for (Node* c : cur->children) {
            if (c->item == item) {
                child = c;
                break;
            }
        }
        if (child == nullptr) {
            child = NewNode(item, cur);
            cur->children.push_back(child);
            HeaderEntry& entry = header_[header_index[k]];
            child->next_link = entry.head;
            entry.head = child;
        }
        child->count += count;
        cur = child;
    }
}

std::vector<FpTree::WeightedTransaction> FpTree::ConditionalBase(
    std::size_t idx) const {
    std::vector<WeightedTransaction> base;
    for (const Node* n = header_[idx].head; n != nullptr; n = n->next_link) {
        WeightedTransaction wt;
        wt.count = n->count;
        for (const Node* p = n->parent; p != nullptr && p->parent != nullptr;
             p = p->parent) {
            wt.items.push_back(p->item);
        }
        if (!wt.items.empty()) {
            std::reverse(wt.items.begin(), wt.items.end());
            base.push_back(std::move(wt));
        }
    }
    return base;
}

bool FpTree::IsSinglePath() const {
    if (root_ == nullptr) return true;
    const Node* cur = root_;
    while (!cur->children.empty()) {
        if (cur->children.size() > 1) return false;
        cur = cur->children.front();
    }
    return true;
}

}  // namespace dfp
