#include "fpm/fptree.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace dfp {

namespace {
constexpr std::uint32_t kNoRank = 0xFFFFFFFFu;
}  // namespace

FpTree FpTree::MakeEmpty(Arena& arena) {
    FpTree tree;
    tree.item_.Attach(&arena);
    tree.count_.Attach(&arena);
    tree.parent_.Attach(&arena);
    tree.next_link_.Attach(&arena);
    tree.first_child_.Attach(&arena);
    tree.next_sibling_.Attach(&arena);
    tree.header_.Attach(&arena);
    return tree;
}

void FpTree::ReserveNodes(std::size_t n) {
    item_.reserve(n);
    count_.reserve(n);
    parent_.reserve(n);
    next_link_.reserve(n);
    first_child_.reserve(n);
    next_sibling_.reserve(n);
}

std::uint32_t FpTree::NewNode(ItemId item, std::uint32_t parent) {
    const std::uint32_t id = static_cast<std::uint32_t>(item_.size());
    item_.push_back(item);
    count_.push_back(0);
    parent_.push_back(parent);
    next_link_.push_back(kNil);
    first_child_.push_back(kNil);
    next_sibling_.push_back(kNil);
    return id;
}

void FpTree::Insert(const std::pair<std::uint32_t, ItemId>* ordered,
                    std::size_t len, std::size_t count) {
    std::uint32_t cur = 0;  // root
    for (std::size_t k = 0; k < len; ++k) {
        const ItemId item = ordered[k].second;
        // Scan the sibling chain for an existing child carrying `item`,
        // remembering the tail so a miss appends in insertion order.
        std::uint32_t child = first_child_[cur];
        std::uint32_t tail = kNil;
        while (child != kNil && item_[child] != item) {
            tail = child;
            child = next_sibling_[child];
        }
        if (child == kNil) {
            child = NewNode(item, cur);
            if (tail == kNil) {
                first_child_[cur] = child;
            } else {
                next_sibling_[tail] = child;
            }
            HeaderEntry& entry = header_[ordered[k].first];
            next_link_[child] = entry.head;
            entry.head = child;
        }
        count_[child] += count;
        cur = child;
    }
}

FpTree FpTree::Build(const PathBuffer& base, std::size_t min_sup, Arena& arena,
                     std::size_t universe, BuildScratch& scratch) {
    FpTree tree = MakeEmpty(arena);
    tree.universe_ = universe;

    // Pass 1: item supports (weighted by path multiplicity).
    scratch.support.assign(universe, 0);
    const std::size_t paths = base.num_paths();
    for (std::size_t p = 0; p < paths; ++p) {
        const std::size_t count = base.path_count[p];
        for (std::uint32_t k = base.path_begin[p]; k < base.path_begin[p + 1];
             ++k) {
            scratch.support[base.items[k]] += count;
        }
    }

    // Frequent items, ordered by descending support (ties → ascending item id
    // for determinism).
    std::vector<std::pair<ItemId, std::size_t>> frequent;
    for (std::size_t i = 0; i < universe; ++i) {
        if (scratch.support[i] >= min_sup) {
            frequent.emplace_back(static_cast<ItemId>(i), scratch.support[i]);
        }
    }
    std::sort(frequent.begin(), frequent.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    if (frequent.empty()) return tree;

    tree.header_.reserve(frequent.size());
    scratch.rank.assign(universe, kNoRank);
    for (std::size_t r = 0; r < frequent.size(); ++r) {
        HeaderEntry entry;
        entry.item = frequent[r].first;
        entry.count = frequent[r].second;
        tree.header_.push_back(entry);
        scratch.rank[frequent[r].first] = static_cast<std::uint32_t>(r);
    }

    // Exact node bound: one node per retained (path, item) occurrence + root.
    std::size_t retained = 0;
    for (const ItemId i : base.items) {
        if (scratch.rank[i] != kNoRank) ++retained;
    }
    tree.ReserveNodes(retained + 1);
    tree.NewNode(/*item=*/0, /*parent=*/kNil);  // root

    // Pass 2: insert paths with infrequent items dropped and the rest sorted
    // by f-list rank.
    for (std::size_t p = 0; p < paths; ++p) {
        scratch.ordered.clear();
        for (std::uint32_t k = base.path_begin[p]; k < base.path_begin[p + 1];
             ++k) {
            const ItemId i = base.items[k];
            const std::uint32_t r = scratch.rank[i];
            if (r != kNoRank) scratch.ordered.emplace_back(r, i);
        }
        if (scratch.ordered.empty()) continue;
        std::sort(scratch.ordered.begin(), scratch.ordered.end());
        tree.Insert(scratch.ordered.data(), scratch.ordered.size(),
                    base.path_count[p]);
    }
    return tree;
}

FpTree FpTree::BuildFromDb(const TransactionDatabase& db, std::size_t min_sup,
                           Arena& arena, BuildScratch& scratch) {
    FpTree tree = MakeEmpty(arena);
    const std::size_t universe = db.num_items();
    tree.universe_ = universe;

    // Supports come from the vertical index — no counting pass.
    std::vector<std::pair<ItemId, std::size_t>> frequent;
    std::size_t retained = 0;  // Σ kept supports = retained occurrences
    for (ItemId i = 0; i < universe; ++i) {
        const std::size_t support = db.ItemSupport(i);
        if (support >= min_sup) {
            frequent.emplace_back(i, support);
            retained += support;
        }
    }
    std::sort(frequent.begin(), frequent.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    if (frequent.empty()) return tree;

    tree.header_.reserve(frequent.size());
    scratch.rank.assign(universe, kNoRank);
    for (std::size_t r = 0; r < frequent.size(); ++r) {
        HeaderEntry entry;
        entry.item = frequent[r].first;
        entry.count = frequent[r].second;
        tree.header_.push_back(entry);
        scratch.rank[frequent[r].first] = static_cast<std::uint32_t>(r);
    }

    tree.ReserveNodes(retained + 1);
    tree.NewNode(/*item=*/0, /*parent=*/kNil);  // root

    for (const auto& txn : db.transactions()) {
        scratch.ordered.clear();
        for (const ItemId i : txn) {
            const std::uint32_t r = scratch.rank[i];
            if (r != kNoRank) scratch.ordered.emplace_back(r, i);
        }
        if (scratch.ordered.empty()) continue;
        std::sort(scratch.ordered.begin(), scratch.ordered.end());
        tree.Insert(scratch.ordered.data(), scratch.ordered.size(), /*count=*/1);
    }
    return tree;
}

FpTree FpTree::Build(const std::vector<WeightedTransaction>& transactions,
                     std::size_t min_sup) {
    auto arena = std::make_unique<Arena>();
    PathBuffer base;
    std::size_t universe = 0;
    std::size_t total_items = 0;
    for (const auto& t : transactions) total_items += t.items.size();
    base.items.reserve(total_items);
    base.path_begin.reserve(transactions.size() + 1);
    base.path_count.reserve(transactions.size());
    for (const auto& t : transactions) {
        base.path_begin.push_back(static_cast<std::uint32_t>(base.items.size()));
        base.path_count.push_back(t.count);
        for (const ItemId i : t.items) {
            base.items.push_back(i);
            if (static_cast<std::size_t>(i) + 1 > universe) {
                universe = static_cast<std::size_t>(i) + 1;
            }
        }
    }
    base.path_begin.push_back(static_cast<std::uint32_t>(base.items.size()));

    BuildScratch scratch;
    FpTree tree = Build(base, min_sup, *arena, universe, scratch);
    tree.owned_arena_ = std::move(arena);
    return tree;
}

void FpTree::AppendConditionalBase(std::size_t idx, PathBuffer* out) const {
    out->clear();
    for (std::uint32_t n = header_[idx].head; n != kNil; n = next_link_[n]) {
        const std::size_t start = out->items.size();
        for (std::uint32_t p = parent_[n]; p != kNil && parent_[p] != kNil;
             p = parent_[p]) {
            out->items.push_back(item_[p]);
        }
        if (out->items.size() == start) continue;  // node sits under the root
        std::reverse(out->items.begin() + static_cast<std::ptrdiff_t>(start),
                     out->items.end());
        out->path_begin.push_back(static_cast<std::uint32_t>(start));
        out->path_count.push_back(count_[n]);
    }
    out->path_begin.push_back(static_cast<std::uint32_t>(out->items.size()));
}

std::vector<FpTree::WeightedTransaction> FpTree::ConditionalBase(
    std::size_t idx) const {
    PathBuffer buffer;
    AppendConditionalBase(idx, &buffer);
    std::vector<WeightedTransaction> base;
    base.reserve(buffer.num_paths());
    for (std::size_t p = 0; p < buffer.num_paths(); ++p) {
        WeightedTransaction wt;
        wt.count = buffer.path_count[p];
        wt.items.assign(
            buffer.items.begin() + buffer.path_begin[p],
            buffer.items.begin() + buffer.path_begin[p + 1]);
        base.push_back(std::move(wt));
    }
    return base;
}

bool FpTree::IsSinglePath() const {
    if (item_.empty()) return true;
    std::uint32_t cur = 0;
    while (first_child_[cur] != kNil) {
        if (next_sibling_[first_child_[cur]] != kNil) return false;
        cur = first_child_[cur];
    }
    return true;
}

}  // namespace dfp
