// FP-growth: all frequent itemsets via recursive conditional FP-trees.
#pragma once

#include "fpm/miner.hpp"

namespace dfp {

/// Han/Pei/Yin FP-growth. Emits every frequent itemset (subject to the
/// config's length filter and execution budget).
class FpGrowthMiner : public Miner {
  public:
    std::string Name() const override { return "fpgrowth"; }
    Result<MineOutcome<Pattern>> MineBudgeted(
        const TransactionDatabase& db, const MinerConfig& config) const override;
};

}  // namespace dfp
