// Eclat: depth-first vertical mining over tid bit vectors (Zaki 2000).
//
// Third independent frequent-itemset implementation; also the fastest of the
// three on the dense databases this framework produces, since support counting
// is a single AND+popcount over cached covers.
#pragma once

#include "fpm/miner.hpp"

namespace dfp {

/// DFS over item-prefix equivalence classes with bitset tidsets.
class EclatMiner : public Miner {
  public:
    std::string Name() const override { return "eclat"; }
    Result<MineOutcome<Pattern>> MineBudgeted(
        const TransactionDatabase& db, const MinerConfig& config) const override;
};

}  // namespace dfp
