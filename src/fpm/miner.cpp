#include "fpm/miner.hpp"

#include <algorithm>
#include <cmath>

#include "common/string_util.hpp"

namespace dfp {

Result<std::vector<Pattern>> Miner::Mine(const TransactionDatabase& db,
                                         const MinerConfig& config) const {
    auto outcome = MineBudgeted(db, config);
    if (!outcome.ok()) return outcome.status();
    MineOutcome<Pattern> mined = std::move(outcome).value();
    if (mined.breach == BudgetBreach::kCancelled) {
        return Status::Cancelled(
            StrFormat("%s miner cancelled after %zu patterns", Name().c_str(),
                      mined.patterns.size()));
    }
    if (mined.truncated()) {
        return Status::ResourceExhausted(
            StrFormat("%s miner stopped on %s after %zu patterns", Name().c_str(),
                      BudgetBreachName(mined.breach), mined.patterns.size()));
    }
    return std::move(mined.patterns);
}

std::size_t ResolveMinSup(const MinerConfig& config, std::size_t num_transactions) {
    std::size_t abs = config.min_sup_abs;
    if (config.min_sup_rel >= 0.0) {
        abs = static_cast<std::size_t>(
            std::ceil(config.min_sup_rel * static_cast<double>(num_transactions)));
    }
    return std::max<std::size_t>(abs, 1);
}

void FilterPatterns(const MinerConfig& config, std::vector<Pattern>* patterns) {
    auto drop = [&config](const Pattern& p) {
        if (!config.include_singletons && p.length() <= 1) return true;
        return p.length() > config.max_pattern_len;
    };
    patterns->erase(std::remove_if(patterns->begin(), patterns->end(), drop),
                    patterns->end());
}

}  // namespace dfp
