#include "fpm/miner.hpp"

#include <algorithm>
#include <cmath>

namespace dfp {

std::size_t ResolveMinSup(const MinerConfig& config, std::size_t num_transactions) {
    std::size_t abs = config.min_sup_abs;
    if (config.min_sup_rel >= 0.0) {
        abs = static_cast<std::size_t>(
            std::ceil(config.min_sup_rel * static_cast<double>(num_transactions)));
    }
    return std::max<std::size_t>(abs, 1);
}

void FilterPatterns(const MinerConfig& config, std::vector<Pattern>* patterns) {
    auto drop = [&config](const Pattern& p) {
        if (!config.include_singletons && p.length() <= 1) return true;
        return p.length() > config.max_pattern_len;
    };
    patterns->erase(std::remove_if(patterns->begin(), patterns->end(), drop),
                    patterns->end());
}

}  // namespace dfp
