// Frequent labeled-path mining in graph databases.
//
// A principled simplification of full frequent-subgraph mining (gSpan): the
// pattern language is restricted to simple labeled paths
//     v0 −e0− v1 −e1− ... −ek−1− vk,
// whose canonical form sidesteps graph-isomorphism machinery (a path equals
// its reverse; the canonical representative is the lexicographically smaller
// orientation). Path features are the backbone of practical graph
// classification (path kernels, fingerprints) and of the compound-
// classification setting in the paper's reference [7]. Support is the number
// of graphs containing the path as a simple (vertex-disjoint) labeled path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "data/graph.hpp"

namespace dfp {

/// A labeled path pattern: k+1 vertex labels and k edge labels.
struct PathPattern {
    std::vector<VertexLabel> vertices;
    std::vector<EdgeLabel> edges;
    std::size_t support = 0;

    std::size_t length() const { return edges.size(); }
    bool operator==(const PathPattern& other) const {
        return vertices == other.vertices && edges == other.edges;
    }
    bool operator<(const PathPattern& other) const;

    /// "(v0)-[e0]-(v1)..." rendering.
    std::string ToString() const;

    /// Canonicalizes in place: a path and its reverse are the same pattern;
    /// keep the lexicographically smaller orientation.
    void Canonicalize();
};

/// True iff `graph` contains `pattern` as a simple labeled path
/// (backtracking search; intended for short patterns).
bool ContainsPath(const LabeledGraph& graph, const PathPattern& pattern);

struct PathMinerConfig {
    double min_sup_rel = -1.0;  ///< relative threshold; negative → absolute
    std::size_t min_sup_abs = 1;
    std::size_t max_edges = 4;  ///< maximum path length in edges
    std::size_t max_patterns = 1'000'000;
    ExecutionBudget budget;     ///< deadline / memory / cancellation limits
};

/// Mines frequent canonical labeled paths of `db`, honouring config.budget
/// cooperatively. Patterns with 0 edges (single vertex labels) are included;
/// callers typically drop them when the feature space already includes
/// vertex-label counts. On a breach, the outcome carries the paths found so
/// far (each support-correct).
Result<MineOutcome<PathPattern>> MinePathsBudgeted(const GraphDatabase& db,
                                                   const PathMinerConfig& config);

/// Strict all-or-nothing wrapper: any breach becomes Cancelled /
/// ResourceExhausted.
Result<std::vector<PathPattern>> MinePaths(const GraphDatabase& db,
                                           const PathMinerConfig& config);

}  // namespace dfp
