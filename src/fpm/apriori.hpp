// Apriori: level-wise frequent-itemset mining (Agrawal & Srikant, VLDB'94).
//
// Kept as a reference baseline: it is the algorithm FP-growth improved upon,
// and having an independent second implementation lets the property tests
// cross-validate every miner's output on random databases.
#pragma once

#include "fpm/miner.hpp"

namespace dfp {

/// Classic Apriori with prefix-join candidate generation, subset pruning, and
/// bitset-based support counting.
class AprioriMiner : public Miner {
  public:
    std::string Name() const override { return "apriori"; }
    Result<MineOutcome<Pattern>> MineBudgeted(
        const TransactionDatabase& db, const MinerConfig& config) const override;
};

}  // namespace dfp
