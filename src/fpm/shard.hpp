// Sharded pattern emission with a deterministic, serial-order merge — the
// output half of the recursive mining decomposition (DESIGN.md §17).
//
// Every pattern a miner emits has a unique *DFS position*: the path of child
// ranks from the root of the search tree to the node that emits it, where a
// node's rank is its 0-based index in its parent's serial iteration order
// (reverse-header order for FP-growth, class-member order for Eclat,
// frequent-item order for the closed miner). Serial mining emits patterns in
// preorder over these positions, and preorder over rank paths is exactly
// lexicographic order on the paths (a prefix sorts before its extensions) —
// so `std::vector<std::uint32_t>` comparison *is* the serial emission order.
//
// A parallel mining task emits into an open shard: a run of patterns that is
// contiguous in the serial emission sequence, keyed by the DFS position of
// its *first* pattern (lazy stamping). Contiguity is maintained by one rule:
// whenever a task hands a subtree to another task (a recursive split), it
// flushes its open shard first — emissions after the spawn belong to a later
// serial range than the spawned subtree, so they open a new shard stamped at
// their own position. Sorting the finished shards by key and concatenating
// therefore reproduces the serial emission sequence bit-identically; when a
// budget truncates some tasks mid-subtree the same merge yields a
// *subsequence* of the serial sequence (each shard is still a contiguous
// serial run, ordered correctly against every other shard).
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "fpm/itemset.hpp"

namespace dfp {

/// DFS position: ranks from the search-tree root. Lexicographic order on
/// keys == serial emission (preorder) order.
using ShardKey = std::vector<std::uint32_t>;

/// Thread-safe sink for finished shards. Tasks push under a mutex (one push
/// per shard, not per pattern — contention is proportional to the number of
/// splits, not the number of patterns); the merge runs single-threaded after
/// the TaskGroup drains.
class ShardCollector {
  public:
    void Push(ShardKey key, std::vector<Pattern> patterns) {
        std::lock_guard<std::mutex> lock(mu_);
        shards_.push_back({std::move(key), std::move(patterns)});
    }

    std::size_t shard_count() const {
        std::lock_guard<std::mutex> lock(mu_);
        return shards_.size();
    }

    /// Sorts shards by key and appends their patterns to `out` — the serial
    /// emission order (see file comment). Call only after every emitting task
    /// finished. Keys are unique (a DFS position belongs to exactly one
    /// shard), so the sort needs no tie-break.
    void MergeInto(std::vector<Pattern>* out) {
        std::lock_guard<std::mutex> lock(mu_);
        std::sort(shards_.begin(), shards_.end(),
                  [](const Shard& a, const Shard& b) { return a.key < b.key; });
        std::size_t total = 0;
        for (const Shard& s : shards_) total += s.patterns.size();
        out->reserve(out->size() + total);
        for (Shard& s : shards_) {
            for (Pattern& p : s.patterns) out->push_back(std::move(p));
        }
        shards_.clear();
    }

  private:
    struct Shard {
        ShardKey key;
        std::vector<Pattern> patterns;
    };

    mutable std::mutex mu_;
    std::vector<Shard> shards_;
};

/// Per-task emitter: tracks the task's current DFS position and the open
/// shard. Miners push a rank entering a search node and pop it on exit;
/// Emit() stamps the shard with the current position on the shard's first
/// pattern. Flush() must be called before submitting any child task (the
/// contiguity rule above); the destructor flushes the final run.
class ShardEmitter {
  public:
    ShardEmitter(ShardCollector* collector, ShardKey base_path)
        : collector_(collector), path_(std::move(base_path)) {}
    ShardEmitter(const ShardEmitter&) = delete;
    ShardEmitter& operator=(const ShardEmitter&) = delete;
    ~ShardEmitter() { Flush(); }

    void PushRank(std::uint32_t rank) { path_.push_back(rank); }
    void PopRank() { path_.pop_back(); }

    /// The current DFS position (the base path a spawned child should start
    /// from — the child's subtree root *is* this position).
    const ShardKey& path() const { return path_; }

    void Emit(Pattern&& p) {
        if (!stamped_) {
            key_ = path_;
            stamped_ = true;
        }
        open_.push_back(std::move(p));
    }

    /// Closes the open shard (no-op when empty). Required before spawning a
    /// child task; emissions afterwards start a new shard at their own
    /// position.
    void Flush() {
        if (!open_.empty()) {
            collector_->Push(std::move(key_), std::move(open_));
            key_.clear();
            open_.clear();
        }
        stamped_ = false;
    }

  private:
    ShardCollector* collector_;
    ShardKey path_;
    ShardKey key_;
    std::vector<Pattern> open_;
    bool stamped_ = false;
};

}  // namespace dfp
