#include "fpm/eclat.hpp"

#include <algorithm>
#include <atomic>

#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

struct EclatContext {
    const TransactionDatabase* db;
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<Pattern>* out;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
    // Set on parallel fan-out: pool-wide tallies so per-task guards enforce
    // the global pattern/memory caps. Null on the serial path.
    SharedMineProgress* shared = nullptr;
    // Instrumentation tally, flushed to the registry once per Mine().
    std::size_t intersections = 0;  // tidset ANDs computed (= nodes expanded)
};

std::size_t GuardEmitted(const EclatContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->emitted.load(std::memory_order_relaxed)
               : ctx.out->size();
}
std::size_t GuardBytes(const EclatContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->est_bytes.load(std::memory_order_relaxed)
               : ctx.est_bytes;
}

void FlushEclatMetrics(std::size_t intersections, std::size_t emitted,
                       bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.nodes_expanded");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.budget_aborts");
    nodes.Inc(intersections);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// One first-level iteration of EclatDfs: extend `prefix` with candidates[k]
// and recurse into that equivalence class. Factored out so the parallel
// fan-out can run exactly one prefix class per task. Returns false when the
// execution budget fires.
bool EclatDfs(EclatContext& ctx, Itemset& prefix, const BitVector& cover,
              const std::vector<ItemId>& candidates);

bool EclatExtend(EclatContext& ctx, Itemset& prefix, const BitVector& cover,
                 const std::vector<ItemId>& candidates, std::size_t k) {
    const ItemId i = candidates[k];
    BitVector extended = cover;
    extended &= ctx.db->ItemCover(i);
    const std::size_t support = extended.Count();
    ++ctx.intersections;
    if (support < ctx.min_sup) return true;
    if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
        BudgetBreach::kNone) {
        return false;
    }

    prefix.push_back(i);
    Pattern p;
    p.items = prefix;
    p.support = support;
    const std::size_t bytes = sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    ctx.est_bytes += bytes;
    if (ctx.shared != nullptr) {
        ctx.shared->AddEmitted();
        ctx.shared->AddBytes(bytes);
    }
    ctx.out->push_back(std::move(p));

    if (prefix.size() < ctx.max_len) {
        const std::vector<ItemId> rest(candidates.begin() +
                                           static_cast<std::ptrdiff_t>(k) + 1,
                                       candidates.end());
        if (!rest.empty() && !EclatDfs(ctx, prefix, extended, rest)) {
            prefix.pop_back();
            return false;
        }
    }
    prefix.pop_back();
    return true;
}

// Extends `prefix` (whose cover is `cover`) with every item > last item.
// Returns false when the execution budget fires.
bool EclatDfs(EclatContext& ctx, Itemset& prefix, const BitVector& cover,
              const std::vector<ItemId>& candidates) {
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        if (!EclatExtend(ctx, prefix, cover, candidates, k)) return false;
    }
    return true;
}

}  // namespace

Result<MineOutcome<Pattern>> EclatMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());
    MineOutcome<Pattern> outcome;
    std::vector<Pattern>& out = outcome.patterns;

    std::vector<ItemId> frequent;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        if (db.ItemSupport(i) >= min_sup) frequent.push_back(i);
    }
    BitVector all(db.num_transactions());
    all.Fill();

    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), frequent.size());
    std::size_t intersections = 0;

    if (threads <= 1) {
        // Serial path: today's code, bit for bit.
        BudgetGuard guard(config.budget, config.max_patterns);
        EclatContext ctx{&db, min_sup, config.max_pattern_len, &guard, &out};
        Itemset prefix;
        if (!EclatDfs(ctx, prefix, all, frequent)) {
            outcome.breach = guard.breach();
        }
        intersections = ctx.intersections;
    } else {
        // Fan out over first-level equivalence-class prefixes: task k mines
        // the {frequent[k]}-prefixed class into a private slot; slots
        // concatenate in item order — the serial emission sequence exactly.
        const std::size_t tasks_n = frequent.size();
        std::vector<std::vector<Pattern>> slots(tasks_n);
        std::vector<EclatContext> contexts(
            tasks_n, EclatContext{&db, min_sup, config.max_pattern_len, nullptr,
                                  nullptr});
        std::vector<BudgetBreach> breaches(tasks_n, BudgetBreach::kNone);
        SharedMineProgress progress;
        DeadlineTimer timer(config.budget.time_budget_ms);

        ThreadPool pool(threads);
        TaskGroup group(pool);
        for (std::size_t k = 0; k < tasks_n; ++k) {
            group.Submit([&, k] {
                BudgetGuard guard(TaskBudget(config.budget, timer),
                                  config.max_patterns);
                EclatContext& ctx = contexts[k];
                ctx.guard = &guard;
                ctx.out = &slots[k];
                ctx.shared = &progress;
                Itemset prefix;
                if (!EclatExtend(ctx, prefix, all, frequent, k)) {
                    breaches[k] = guard.breach();
                }
            });
        }
        group.Wait();

        std::size_t total = 0;
        for (const EclatContext& ctx : contexts) {
            intersections += ctx.intersections;
        }
        for (const auto& slot : slots) total += slot.size();
        out.reserve(total);
        for (std::size_t k = 0; k < tasks_n; ++k) {
            for (Pattern& p : slots[k]) out.push_back(std::move(p));
        }
        for (BudgetBreach b : breaches) {
            if (b != BudgetBreach::kNone) {
                outcome.breach = b;
                break;
            }
        }
    }

    if (outcome.truncated()) {
        FlushEclatMetrics(intersections, out.size(), true);
        RecordBreach("fpm.eclat", outcome.breach,
                     static_cast<double>(out.size()));
        FilterPatterns(config, &out);
        return outcome;
    }
    FilterPatterns(config, &out);
    FlushEclatMetrics(intersections, out.size(), false);
    return outcome;
}

}  // namespace dfp
