#include "fpm/eclat.hpp"

#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

struct EclatContext {
    const TransactionDatabase* db;
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<Pattern>* out;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
    // Instrumentation tally, flushed to the registry once per Mine().
    std::size_t intersections = 0;  // tidset ANDs computed (= nodes expanded)
};

void FlushEclatMetrics(const EclatContext& ctx, std::size_t emitted,
                       bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.nodes_expanded");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.budget_aborts");
    nodes.Inc(ctx.intersections);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Extends `prefix` (whose cover is `cover`) with every item > last item.
// Returns false when the execution budget fires.
bool EclatDfs(EclatContext& ctx, Itemset& prefix, const BitVector& cover,
              const std::vector<ItemId>& candidates) {
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        const ItemId i = candidates[k];
        BitVector extended = cover;
        extended &= ctx.db->ItemCover(i);
        const std::size_t support = extended.Count();
        ++ctx.intersections;
        if (support < ctx.min_sup) continue;
        if (ctx.guard->Check(ctx.out->size(), ctx.est_bytes) !=
            BudgetBreach::kNone) {
            return false;
        }

        prefix.push_back(i);
        Pattern p;
        p.items = prefix;
        p.support = support;
        ctx.est_bytes += sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
        ctx.out->push_back(std::move(p));

        if (prefix.size() < ctx.max_len) {
            const std::vector<ItemId> rest(candidates.begin() +
                                               static_cast<std::ptrdiff_t>(k) + 1,
                                           candidates.end());
            if (!rest.empty() && !EclatDfs(ctx, prefix, extended, rest)) {
                prefix.pop_back();
                return false;
            }
        }
        prefix.pop_back();
    }
    return true;
}

}  // namespace

Result<MineOutcome<Pattern>> EclatMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());
    BudgetGuard guard(config.budget, config.max_patterns);
    MineOutcome<Pattern> outcome;
    std::vector<Pattern>& out = outcome.patterns;
    EclatContext ctx{&db, min_sup, config.max_pattern_len, &guard, &out};

    std::vector<ItemId> frequent;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        if (db.ItemSupport(i) >= min_sup) frequent.push_back(i);
    }
    BitVector all(db.num_transactions());
    all.Fill();
    Itemset prefix;
    if (!EclatDfs(ctx, prefix, all, frequent)) {
        outcome.breach = guard.breach();
        FlushEclatMetrics(ctx, out.size(), /*budget_abort=*/true);
        RecordBreach("fpm.eclat", outcome.breach,
                     static_cast<double>(out.size()));
        FilterPatterns(config, &out);
        return outcome;
    }
    FilterPatterns(config, &out);
    FlushEclatMetrics(ctx, out.size(), /*budget_abort=*/false);
    return outcome;
}

}  // namespace dfp
