#include "fpm/eclat.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "fpm/shard.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

// One extension of the current class prefix: its item, exact support, and
// its cover in either representation. Classes are uniform-form: every member
// of a class holds a tidset, or every member holds a diffset relative to the
// class prefix (dEclat, Zaki & Gouda 2003). Supports are exact integers under
// both forms, so pattern output is identical whichever form is chosen.
struct Member {
    ItemId item = 0;
    std::size_t support = 0;
    const BitVector* set = nullptr;
};

// Per-depth reusable storage: candidate staging, the materialized member
// list, and a bitvector pool that is written in place (AssignAnd/AssignAndNot
// into existing words — no allocation after first touch of a depth).
struct EclatLevel {
    std::vector<std::pair<std::size_t, std::size_t>> staged;  // (member idx, support)
    std::vector<Member> members;
    std::vector<BitVector> pool;
};

// Per-task scratch; sized once so recursion never reallocates `levels`.
struct EclatScratch {
    std::vector<EclatLevel> levels;
};

struct EclatContext {
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<Pattern>* out;
    EclatScratch* scratch;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
    // Set on parallel fan-out: pool-wide tallies so per-task guards enforce
    // the global pattern/memory caps. Null on the serial path.
    SharedMineProgress* shared = nullptr;
    // Instrumentation tally, flushed to the registry once per Mine().
    std::size_t intersections = 0;  // fused set-count kernels evaluated
    std::size_t diffset_classes = 0;  // classes mined in diffset form
};

std::size_t GuardEmitted(const EclatContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->emitted.load(std::memory_order_relaxed)
               : ctx.out->size();
}
std::size_t GuardBytes(const EclatContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->est_bytes.load(std::memory_order_relaxed)
               : ctx.est_bytes;
}

void FlushEclatMetrics(std::size_t intersections, std::size_t diffset_classes,
                       std::size_t emitted, bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.nodes_expanded");
    static auto& diff =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.diffset_classes");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.budget_aborts");
    nodes.Inc(intersections);
    diff.Inc(diffset_classes);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Emits `prefix ∪ {members[k].item}` and mines its equivalence class (the
// one first-level unit of the parallel fan-out). Returns false when the
// execution budget fires.
bool MineOne(EclatContext& ctx, Itemset& prefix, const Member* members,
             std::size_t m, std::size_t k, bool diffset_form,
             std::size_t depth);

// Emits every member of a class and recurses. Members are in ascending item
// order, which reproduces the candidate order (and therefore the emission
// sequence) of the plain tidset DFS exactly.
bool MineClass(EclatContext& ctx, Itemset& prefix, const Member* members,
               std::size_t m, bool diffset_form, std::size_t depth) {
    for (std::size_t k = 0; k < m; ++k) {
        if (!MineOne(ctx, prefix, members, m, k, diffset_form, depth)) {
            return false;
        }
    }
    return true;
}

bool MineOne(EclatContext& ctx, Itemset& prefix, const Member* members,
             std::size_t m, std::size_t k, bool diffset_form,
             std::size_t depth) {
    const Member& x = members[k];
    if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
        BudgetBreach::kNone) {
        return false;
    }

    prefix.push_back(x.item);
    Pattern p;
    p.items = prefix;
    p.support = x.support;
    const std::size_t bytes = sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    ctx.est_bytes += bytes;
    if (ctx.shared != nullptr) {
        ctx.shared->AddEmitted();
        ctx.shared->AddBytes(bytes);
    }
    ctx.out->push_back(std::move(p));

    if (prefix.size() < ctx.max_len && k + 1 < m) {
        // Stage the surviving siblings with fused count kernels — no set is
        // materialized for an extension that dies on min_sup. Anti-monotone
        // class pruning: siblings that failed min_sup at this class never
        // re-enter deeper classes (the plain DFS re-tested them each level).
        EclatLevel& lvl = ctx.scratch->levels[depth];
        lvl.staged.clear();
        std::size_t tidset_mass = 0;
        std::size_t diffset_mass = 0;
        for (std::size_t j = k + 1; j < m; ++j) {
            const Member& y = members[j];
            // Tidset pair:  sup = |t(PX) ∧ t(PY)|.
            // Diffset pair: sup = sup(PX) − |d(PY) ∧ ¬d(PX)|  (dEclat).
            const std::size_t support =
                diffset_form ? x.support - y.set->AndNotCount(*x.set)
                             : x.set->AndCount(*y.set);
            ++ctx.intersections;
            if (support < ctx.min_sup) continue;
            lvl.staged.emplace_back(j, support);
            tidset_mass += support;
            diffset_mass += x.support - support;
        }
        if (!lvl.staged.empty()) {
            // Once a class is in diffset form its children stay diffsets
            // (reconstructing tidsets would need the whole ancestor chain);
            // a tidset class switches when the diffsets are smaller in
            // aggregate — on dense data that is almost immediately.
            const bool child_diffsets =
                diffset_form || diffset_mass < tidset_mass;
            if (child_diffsets) ++ctx.diffset_classes;
            if (lvl.pool.size() < lvl.staged.size()) {
                lvl.pool.resize(lvl.staged.size());
            }
            lvl.members.clear();
            for (std::size_t s = 0; s < lvl.staged.size(); ++s) {
                const auto [j, support] = lvl.staged[s];
                const Member& y = members[j];
                BitVector& slot = lvl.pool[s];
                if (diffset_form) {
                    slot.AssignAndNot(*y.set, *x.set);  // d(PXY) = d(PY) ∧ ¬d(PX)
                } else if (child_diffsets) {
                    slot.AssignAndNot(*x.set, *y.set);  // d((PX)Y) = t(PX) ∧ ¬t(PY)
                } else {
                    slot.AssignAnd(*x.set, *y.set);  // t(PXY)
                }
                lvl.members.push_back(Member{y.item, support, &slot});
            }
            if (!MineClass(ctx, prefix, lvl.members.data(), lvl.members.size(),
                           child_diffsets, depth + 1)) {
                prefix.pop_back();
                return false;
            }
        }
    }
    prefix.pop_back();
    return true;
}

// ---------------------------------------------------------------------------
// Parallel path: recursive equivalence-class decomposition with sharded
// emission (DESIGN.md §17). The DFS mirrors MineClass/MineOne exactly —
// identical candidate staging, identical tidset/diffset switching, identical
// guard placement — but a child class whose estimated work (surviving
// siblings × class-cover rows) exceeds the split threshold is copied into a
// heap-owned holder and re-submitted to the TaskGroup. Workers reuse a
// per-slot EclatScratch (the level pools that made per-task construction the
// old fan-out's 0.91× regression), and emit into DFS-position-keyed shards
// whose merge reproduces the serial emission sequence bit for bit.
// ---------------------------------------------------------------------------

// A spawned class: its prefix, its members, and the bitvector storage the
// members point into (copied out of the spawning task's level pool, which is
// overwritten as that task continues mining its own siblings).
struct EclatClassHolder {
    Itemset prefix;
    std::vector<BitVector> sets;
    std::vector<Member> members;
    bool diffset_form = false;
    std::size_t depth = 0;
};

struct ParEclatShared {
    std::size_t min_sup = 0;
    std::size_t max_len = 0;
    std::size_t max_patterns = 0;
    std::size_t split_threshold = 0;
    std::size_t max_depth = 0;  // root class size: sizes per-slot level pools
    const ExecutionBudget* budget = nullptr;
    DeadlineTimer timer;
    SharedMineProgress progress;
    ShardCollector shards;
    TaskGroup* group = nullptr;
    WorkerLocal<EclatScratch>* scratch = nullptr;
    std::size_t num_workers = 0;
    std::atomic<int> breach{static_cast<int>(BudgetBreach::kNone)};
    std::atomic<std::uint64_t> intersections{0};
    std::atomic<std::uint64_t> diffset_classes{0};

    ParEclatShared(const MinerConfig& config, std::size_t min_sup_in)
        : min_sup(min_sup_in),
          max_len(config.max_pattern_len),
          max_patterns(config.max_patterns),
          split_threshold(config.split_work_threshold),
          budget(&config.budget),
          timer(config.budget.time_budget_ms) {}

    void RecordFirstBreach(BudgetBreach b) {
        int expected = static_cast<int>(BudgetBreach::kNone);
        breach.compare_exchange_strong(expected, static_cast<int>(b),
                                       std::memory_order_relaxed);
    }
};

struct ParEclatCtx {
    ParEclatShared* sh;
    BudgetGuard* guard;
    ShardEmitter* emitter;
    EclatScratch* scratch;
    std::size_t slot;
    std::size_t intersections = 0;
    std::size_t diffset_classes = 0;
};

void RunEclatClassTask(ParEclatShared* sh,
                       std::shared_ptr<EclatClassHolder> holder, ShardKey path,
                       std::size_t slot);

bool ParMineOne(ParEclatCtx& ctx, Itemset& prefix, const Member* members,
                std::size_t m, std::size_t k, bool diffset_form,
                std::size_t depth);

bool ParMineClass(ParEclatCtx& ctx, Itemset& prefix, const Member* members,
                  std::size_t m, bool diffset_form, std::size_t depth) {
    for (std::size_t k = 0; k < m; ++k) {
        if (!ParMineOne(ctx, prefix, members, m, k, diffset_form, depth)) {
            return false;
        }
    }
    return true;
}

bool ParMineOne(ParEclatCtx& ctx, Itemset& prefix, const Member* members,
                std::size_t m, std::size_t k, bool diffset_form,
                std::size_t depth) {
    ParEclatShared& sh = *ctx.sh;
    const Member& x = members[k];
    if (ctx.guard->Check(
            sh.progress.emitted.load(std::memory_order_relaxed),
            sh.progress.est_bytes.load(std::memory_order_relaxed)) !=
        BudgetBreach::kNone) {
        return false;
    }

    ctx.emitter->PushRank(static_cast<std::uint32_t>(k));
    prefix.push_back(x.item);
    Pattern p;
    p.items = prefix;
    p.support = x.support;
    const std::size_t bytes =
        sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    sh.progress.AddEmitted();
    sh.progress.AddBytes(bytes);
    ctx.emitter->Emit(std::move(p));

    bool ok = true;
    if (prefix.size() < sh.max_len && k + 1 < m) {
        EclatLevel& lvl = ctx.scratch->levels[depth];
        lvl.staged.clear();
        std::size_t tidset_mass = 0;
        std::size_t diffset_mass = 0;
        for (std::size_t j = k + 1; j < m; ++j) {
            const Member& y = members[j];
            const std::size_t support =
                diffset_form ? x.support - y.set->AndNotCount(*x.set)
                             : x.set->AndCount(*y.set);
            ++ctx.intersections;
            if (support < sh.min_sup) continue;
            lvl.staged.emplace_back(j, support);
            tidset_mass += support;
            diffset_mass += x.support - support;
        }
        if (!lvl.staged.empty()) {
            const bool child_diffsets =
                diffset_form || diffset_mass < tidset_mass;
            if (child_diffsets) ++ctx.diffset_classes;
            // Estimated class work: surviving siblings × class-cover rows.
            const std::size_t est = lvl.staged.size() * x.support;
            if (est > sh.split_threshold) {
                // Split: materialize the child class into its own holder
                // (this task's level pool is reused for its next sibling)
                // and hand the whole class to the pool.
                auto holder = std::make_shared<EclatClassHolder>();
                holder->prefix = prefix;
                holder->diffset_form = child_diffsets;
                holder->depth = depth + 1;
                holder->sets.resize(lvl.staged.size());
                holder->members.reserve(lvl.staged.size());
                for (std::size_t s = 0; s < lvl.staged.size(); ++s) {
                    const auto [j, support] = lvl.staged[s];
                    const Member& y = members[j];
                    BitVector& slot_set = holder->sets[s];
                    if (diffset_form) {
                        slot_set.AssignAndNot(*y.set, *x.set);
                    } else if (child_diffsets) {
                        slot_set.AssignAndNot(*x.set, *y.set);
                    } else {
                        slot_set.AssignAnd(*x.set, *y.set);
                    }
                    holder->members.push_back(
                        Member{y.item, support, &slot_set});
                }
                ctx.emitter->Flush();  // contiguity: shard ends at the spawn
                ShardKey child_path = ctx.emitter->path();
                const std::size_t from = ctx.slot < sh.num_workers
                                             ? ctx.slot
                                             : ThreadPool::kNoQueue;
                sh.group->SubmitSlotted(
                    [sh_ptr = &sh, holder = std::move(holder),
                     child_path =
                         std::move(child_path)](std::size_t slot) mutable {
                        RunEclatClassTask(sh_ptr, std::move(holder),
                                          std::move(child_path), slot);
                    },
                    from);
            } else {
                if (lvl.pool.size() < lvl.staged.size()) {
                    lvl.pool.resize(lvl.staged.size());
                }
                lvl.members.clear();
                for (std::size_t s = 0; s < lvl.staged.size(); ++s) {
                    const auto [j, support] = lvl.staged[s];
                    const Member& y = members[j];
                    BitVector& slot_set = lvl.pool[s];
                    if (diffset_form) {
                        slot_set.AssignAndNot(*y.set, *x.set);
                    } else if (child_diffsets) {
                        slot_set.AssignAndNot(*x.set, *y.set);
                    } else {
                        slot_set.AssignAnd(*x.set, *y.set);
                    }
                    lvl.members.push_back(Member{y.item, support, &slot_set});
                }
                ok = ParMineClass(ctx, prefix, lvl.members.data(),
                                  lvl.members.size(), child_diffsets,
                                  depth + 1);
            }
        }
    }
    prefix.pop_back();
    ctx.emitter->PopRank();
    return ok;
}

void RunEclatClassTask(ParEclatShared* sh,
                       std::shared_ptr<EclatClassHolder> holder, ShardKey path,
                       std::size_t slot) {
    EclatScratch& scratch = sh->scratch->At(slot);
    // Level pools are indexed by absolute depth; depth never exceeds the root
    // class size. Sized once per slot (idempotent across tasks of one mine).
    if (scratch.levels.size() < sh->max_depth) {
        scratch.levels.resize(sh->max_depth);
    }
    BudgetGuard guard(TaskBudget(*sh->budget, sh->timer), sh->max_patterns);
    ShardEmitter emitter(&sh->shards, std::move(path));
    ParEclatCtx ctx{sh, &guard, &emitter, &scratch, slot};
    Itemset prefix = holder->prefix;
    if (!ParMineClass(ctx, prefix, holder->members.data(),
                      holder->members.size(), holder->diffset_form,
                      holder->depth)) {
        sh->RecordFirstBreach(guard.breach());
    }
    emitter.Flush();
    sh->intersections.fetch_add(ctx.intersections, std::memory_order_relaxed);
    sh->diffset_classes.fetch_add(ctx.diffset_classes,
                                  std::memory_order_relaxed);
}

}  // namespace

Result<MineOutcome<Pattern>> EclatMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());
    MineOutcome<Pattern> outcome;
    std::vector<Pattern>& out = outcome.patterns;

    // Root class: the frequent singletons, with their covers *borrowed* from
    // the database's vertical index — first-level tasks share these read-only
    // views instead of copying tidset vectors per prefix.
    std::vector<Member> root;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        const std::size_t support = db.ItemSupport(i);
        if (support >= min_sup) {
            root.push_back(Member{i, support, &db.ItemCover(i)});
        }
    }

    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), root.size());
    std::size_t intersections = 0;
    std::size_t diffset_classes = 0;

    if (threads <= 1) {
        // Serial path: the parallel fan-out runs exactly this, split by k.
        BudgetGuard guard(config.budget, config.max_patterns);
        EclatScratch scratch;
        scratch.levels.resize(root.size());
        EclatContext ctx{min_sup, config.max_pattern_len, &guard, &out,
                         &scratch};
        Itemset prefix;
        if (!MineClass(ctx, prefix, root.data(), root.size(),
                       /*diffset_form=*/false, /*depth=*/0)) {
            outcome.breach = guard.breach();
        }
        intersections = ctx.intersections;
        diffset_classes = ctx.diffset_classes;
    } else {
        // Recursive decomposition (DESIGN.md §17): one root task walks the
        // class tree in serial order; any child class whose estimated work
        // exceeds the split threshold is copied into a holder and
        // re-submitted to the TaskGroup, so parallelism follows the
        // (exponentially skewed) class sizes instead of the first level's
        // item count. Workers reuse per-slot level pools across tasks —
        // the per-task scratch construction of the old fan-out was the
        // 0.91× regression — and emissions land in DFS-keyed shards whose
        // merge reproduces the serial sequence bit for bit.
        ThreadPool pool(threads);
        WorkerLocal<EclatScratch> scratch(pool.num_slots());
        TaskGroup group(pool);
        ParEclatShared shared(config, min_sup);
        shared.max_depth = root.size();
        shared.group = &group;
        shared.scratch = &scratch;
        shared.num_workers = pool.num_workers();
        // Root "class": members borrow the database's item covers (no copy).
        auto root_holder = std::make_shared<EclatClassHolder>();
        root_holder->members = root;
        group.SubmitSlotted([&shared, root_holder](std::size_t slot) {
            RunEclatClassTask(&shared, root_holder, {}, slot);
        });
        group.Wait();

        shared.shards.MergeInto(&out);
        outcome.breach = static_cast<BudgetBreach>(
            shared.breach.load(std::memory_order_relaxed));
        intersections = shared.intersections.load(std::memory_order_relaxed);
        diffset_classes =
            shared.diffset_classes.load(std::memory_order_relaxed);
    }

    if (outcome.truncated()) {
        FlushEclatMetrics(intersections, diffset_classes, out.size(), true);
        RecordBreach("fpm.eclat", outcome.breach,
                     static_cast<double>(out.size()));
        FilterPatterns(config, &out);
        return outcome;
    }
    FilterPatterns(config, &out);
    FlushEclatMetrics(intersections, diffset_classes, out.size(), false);
    return outcome;
}

}  // namespace dfp
