#include "fpm/eclat.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

// One extension of the current class prefix: its item, exact support, and
// its cover in either representation. Classes are uniform-form: every member
// of a class holds a tidset, or every member holds a diffset relative to the
// class prefix (dEclat, Zaki & Gouda 2003). Supports are exact integers under
// both forms, so pattern output is identical whichever form is chosen.
struct Member {
    ItemId item = 0;
    std::size_t support = 0;
    const BitVector* set = nullptr;
};

// Per-depth reusable storage: candidate staging, the materialized member
// list, and a bitvector pool that is written in place (AssignAnd/AssignAndNot
// into existing words — no allocation after first touch of a depth).
struct EclatLevel {
    std::vector<std::pair<std::size_t, std::size_t>> staged;  // (member idx, support)
    std::vector<Member> members;
    std::vector<BitVector> pool;
};

// Per-task scratch; sized once so recursion never reallocates `levels`.
struct EclatScratch {
    std::vector<EclatLevel> levels;
};

struct EclatContext {
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<Pattern>* out;
    EclatScratch* scratch;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
    // Set on parallel fan-out: pool-wide tallies so per-task guards enforce
    // the global pattern/memory caps. Null on the serial path.
    SharedMineProgress* shared = nullptr;
    // Instrumentation tally, flushed to the registry once per Mine().
    std::size_t intersections = 0;  // fused set-count kernels evaluated
    std::size_t diffset_classes = 0;  // classes mined in diffset form
};

std::size_t GuardEmitted(const EclatContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->emitted.load(std::memory_order_relaxed)
               : ctx.out->size();
}
std::size_t GuardBytes(const EclatContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->est_bytes.load(std::memory_order_relaxed)
               : ctx.est_bytes;
}

void FlushEclatMetrics(std::size_t intersections, std::size_t diffset_classes,
                       std::size_t emitted, bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.nodes_expanded");
    static auto& diff =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.diffset_classes");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.eclat.budget_aborts");
    nodes.Inc(intersections);
    diff.Inc(diffset_classes);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Emits `prefix ∪ {members[k].item}` and mines its equivalence class (the
// one first-level unit of the parallel fan-out). Returns false when the
// execution budget fires.
bool MineOne(EclatContext& ctx, Itemset& prefix, const Member* members,
             std::size_t m, std::size_t k, bool diffset_form,
             std::size_t depth);

// Emits every member of a class and recurses. Members are in ascending item
// order, which reproduces the candidate order (and therefore the emission
// sequence) of the plain tidset DFS exactly.
bool MineClass(EclatContext& ctx, Itemset& prefix, const Member* members,
               std::size_t m, bool diffset_form, std::size_t depth) {
    for (std::size_t k = 0; k < m; ++k) {
        if (!MineOne(ctx, prefix, members, m, k, diffset_form, depth)) {
            return false;
        }
    }
    return true;
}

bool MineOne(EclatContext& ctx, Itemset& prefix, const Member* members,
             std::size_t m, std::size_t k, bool diffset_form,
             std::size_t depth) {
    const Member& x = members[k];
    if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
        BudgetBreach::kNone) {
        return false;
    }

    prefix.push_back(x.item);
    Pattern p;
    p.items = prefix;
    p.support = x.support;
    const std::size_t bytes = sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    ctx.est_bytes += bytes;
    if (ctx.shared != nullptr) {
        ctx.shared->AddEmitted();
        ctx.shared->AddBytes(bytes);
    }
    ctx.out->push_back(std::move(p));

    if (prefix.size() < ctx.max_len && k + 1 < m) {
        // Stage the surviving siblings with fused count kernels — no set is
        // materialized for an extension that dies on min_sup. Anti-monotone
        // class pruning: siblings that failed min_sup at this class never
        // re-enter deeper classes (the plain DFS re-tested them each level).
        EclatLevel& lvl = ctx.scratch->levels[depth];
        lvl.staged.clear();
        std::size_t tidset_mass = 0;
        std::size_t diffset_mass = 0;
        for (std::size_t j = k + 1; j < m; ++j) {
            const Member& y = members[j];
            // Tidset pair:  sup = |t(PX) ∧ t(PY)|.
            // Diffset pair: sup = sup(PX) − |d(PY) ∧ ¬d(PX)|  (dEclat).
            const std::size_t support =
                diffset_form ? x.support - y.set->AndNotCount(*x.set)
                             : x.set->AndCount(*y.set);
            ++ctx.intersections;
            if (support < ctx.min_sup) continue;
            lvl.staged.emplace_back(j, support);
            tidset_mass += support;
            diffset_mass += x.support - support;
        }
        if (!lvl.staged.empty()) {
            // Once a class is in diffset form its children stay diffsets
            // (reconstructing tidsets would need the whole ancestor chain);
            // a tidset class switches when the diffsets are smaller in
            // aggregate — on dense data that is almost immediately.
            const bool child_diffsets =
                diffset_form || diffset_mass < tidset_mass;
            if (child_diffsets) ++ctx.diffset_classes;
            if (lvl.pool.size() < lvl.staged.size()) {
                lvl.pool.resize(lvl.staged.size());
            }
            lvl.members.clear();
            for (std::size_t s = 0; s < lvl.staged.size(); ++s) {
                const auto [j, support] = lvl.staged[s];
                const Member& y = members[j];
                BitVector& slot = lvl.pool[s];
                if (diffset_form) {
                    slot.AssignAndNot(*y.set, *x.set);  // d(PXY) = d(PY) ∧ ¬d(PX)
                } else if (child_diffsets) {
                    slot.AssignAndNot(*x.set, *y.set);  // d((PX)Y) = t(PX) ∧ ¬t(PY)
                } else {
                    slot.AssignAnd(*x.set, *y.set);  // t(PXY)
                }
                lvl.members.push_back(Member{y.item, support, &slot});
            }
            if (!MineClass(ctx, prefix, lvl.members.data(), lvl.members.size(),
                           child_diffsets, depth + 1)) {
                prefix.pop_back();
                return false;
            }
        }
    }
    prefix.pop_back();
    return true;
}

}  // namespace

Result<MineOutcome<Pattern>> EclatMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());
    MineOutcome<Pattern> outcome;
    std::vector<Pattern>& out = outcome.patterns;

    // Root class: the frequent singletons, with their covers *borrowed* from
    // the database's vertical index — first-level tasks share these read-only
    // views instead of copying tidset vectors per prefix.
    std::vector<Member> root;
    for (ItemId i = 0; i < db.num_items(); ++i) {
        const std::size_t support = db.ItemSupport(i);
        if (support >= min_sup) {
            root.push_back(Member{i, support, &db.ItemCover(i)});
        }
    }

    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), root.size());
    std::size_t intersections = 0;
    std::size_t diffset_classes = 0;

    if (threads <= 1) {
        // Serial path: the parallel fan-out runs exactly this, split by k.
        BudgetGuard guard(config.budget, config.max_patterns);
        EclatScratch scratch;
        scratch.levels.resize(root.size());
        EclatContext ctx{min_sup, config.max_pattern_len, &guard, &out,
                         &scratch};
        Itemset prefix;
        if (!MineClass(ctx, prefix, root.data(), root.size(),
                       /*diffset_form=*/false, /*depth=*/0)) {
            outcome.breach = guard.breach();
        }
        intersections = ctx.intersections;
        diffset_classes = ctx.diffset_classes;
    } else {
        // Fan out over first-level equivalence-class prefixes: task k mines
        // the {root[k]}-prefixed class into a private slot; slots concatenate
        // in item order — the serial emission sequence exactly.
        const std::size_t tasks_n = root.size();
        std::vector<std::vector<Pattern>> slots(tasks_n);
        std::vector<EclatContext> contexts(
            tasks_n,
            EclatContext{min_sup, config.max_pattern_len, nullptr, nullptr,
                         nullptr});
        std::vector<BudgetBreach> breaches(tasks_n, BudgetBreach::kNone);
        SharedMineProgress progress;
        DeadlineTimer timer(config.budget.time_budget_ms);

        ThreadPool pool(threads);
        TaskGroup group(pool);
        for (std::size_t k = 0; k < tasks_n; ++k) {
            group.Submit([&, k] {
                BudgetGuard guard(TaskBudget(config.budget, timer),
                                  config.max_patterns);
                EclatScratch scratch;
                scratch.levels.resize(tasks_n);
                EclatContext& ctx = contexts[k];
                ctx.guard = &guard;
                ctx.out = &slots[k];
                ctx.scratch = &scratch;
                ctx.shared = &progress;
                Itemset prefix;
                if (!MineOne(ctx, prefix, root.data(), root.size(), k,
                             /*diffset_form=*/false, /*depth=*/0)) {
                    breaches[k] = guard.breach();
                }
            });
        }
        group.Wait();

        std::size_t total = 0;
        for (const EclatContext& ctx : contexts) {
            intersections += ctx.intersections;
            diffset_classes += ctx.diffset_classes;
        }
        for (const auto& slot : slots) total += slot.size();
        out.reserve(total);
        for (std::size_t k = 0; k < tasks_n; ++k) {
            for (Pattern& p : slots[k]) out.push_back(std::move(p));
        }
        for (BudgetBreach b : breaches) {
            if (b != BudgetBreach::kNone) {
                outcome.breach = b;
                break;
            }
        }
    }

    if (outcome.truncated()) {
        FlushEclatMetrics(intersections, diffset_classes, out.size(), true);
        RecordBreach("fpm.eclat", outcome.breach,
                     static_cast<double>(out.size()));
        FilterPatterns(config, &out);
        return outcome;
    }
    FilterPatterns(config, &out);
    FlushEclatMetrics(intersections, diffset_classes, out.size(), false);
    return outcome;
}

}  // namespace dfp
