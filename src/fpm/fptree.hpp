// FP-tree: the prefix-tree structure of Han, Pei & Yin (SIGMOD'00).
//
// Transactions are inserted with their items reordered by descending global
// frequency so that shared prefixes compress; per-item node links ("header
// table") let the miner extract conditional pattern bases without scanning
// the database again.
//
// Layout: index-based structure-of-arrays (item[], count[], parent[],
// next_link[], first_child[], next_sibling[]) allocated from a caller-owned
// Arena rather than a pointer-per-node heap graph. FP-growth builds and
// discards one conditional tree per header entry per recursion level, so the
// node storage is the mining hot path's allocation profile: with the arena a
// conditional tree is a handful of bump allocations that are *rewound* (not
// freed) when its subtree finishes, and the SoA arrays keep the parent-chain
// walks of ConditionalBase on contiguous cache lines.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"

namespace dfp {

/// FP-tree over weighted transactions (counts let conditional trees reuse the
/// same builder). Node storage lives in an Arena; trees built through the
/// arena-taking Build() overloads do not own their memory and must not
/// outlive the arena (the mining recursion rewinds the arena after each
/// conditional subtree).
class FpTree {
  public:
    /// Index sentinel: "no node".
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    /// An itemset with a multiplicity (compatibility shape for tests and
    /// simple callers; the miners use PathBuffer).
    struct WeightedTransaction {
        std::vector<ItemId> items;
        std::size_t count = 1;
    };

    /// Flat conditional pattern base: paths concatenated into one items
    /// array with offsets, plus a multiplicity per path. Reused across
    /// ConditionalBase extractions so the per-call vector-of-vectors churn of
    /// the old representation disappears (see AppendConditionalBase).
    struct PathBuffer {
        std::vector<ItemId> items;              ///< concatenated paths
        std::vector<std::uint32_t> path_begin;  ///< offsets; size = paths + 1
        std::vector<std::size_t> path_count;    ///< multiplicity per path

        std::size_t num_paths() const { return path_count.size(); }
        void clear() {
            items.clear();
            path_begin.clear();
            path_count.clear();
        }
    };

    /// Reusable build workspace (support / rank scratch sized to the item
    /// universe, and the per-path reorder buffer). One per mining task.
    struct BuildScratch {
        std::vector<std::size_t> support;
        std::vector<std::uint32_t> rank;
        std::vector<std::pair<std::uint32_t, ItemId>> ordered;
    };

    struct HeaderEntry {
        ItemId item = 0;
        std::size_t count = 0;       ///< total support of the item in this tree
        std::uint32_t head = kNil;   ///< first node of the item's node-link chain
    };

    FpTree() = default;
    FpTree(FpTree&&) = default;
    FpTree& operator=(FpTree&&) = default;

    /// Builds the tree keeping only items with support >= min_sup. Node
    /// arrays are allocated from `arena`; item ids must be < `universe`.
    /// `scratch` is reused across calls (cleared internally).
    static FpTree Build(const PathBuffer& base, std::size_t min_sup,
                        Arena& arena, std::size_t universe,
                        BuildScratch& scratch);

    /// Top-level build straight from a database (item supports come from the
    /// vertical index — no transaction copy, no counting pass).
    static FpTree BuildFromDb(const TransactionDatabase& db, std::size_t min_sup,
                              Arena& arena, BuildScratch& scratch);

    /// Compatibility overload: self-contained build into an internal arena.
    static FpTree Build(const std::vector<WeightedTransaction>& transactions,
                        std::size_t min_sup);

    /// True if the tree holds no frequent item.
    bool empty() const { return header_.empty(); }

    /// Header entries, sorted by descending support (insertion order). Mining
    /// iterates them in reverse (least-frequent first).
    const FlatVec<HeaderEntry>& header() const { return header_; }

    /// Appends the prefix paths of every node carrying header()[idx].item
    /// (the conditional pattern base) to `out` as flat paths in root→node
    /// item order. `out` is cleared first; its buffers are reused across
    /// calls — this is the allocation-free path used by FP-growth.
    void AppendConditionalBase(std::size_t idx, PathBuffer* out) const;

    /// Compatibility wrapper materializing the base as weighted transactions.
    std::vector<WeightedTransaction> ConditionalBase(std::size_t idx) const;

    /// True if the tree is a single chain (enables subset enumeration).
    bool IsSinglePath() const;

    /// Node count including the root.
    std::size_t num_nodes() const { return item_.size(); }

    /// Exclusive upper bound on item ids in this tree (build scratch sizing
    /// for conditional trees).
    std::size_t universe() const { return universe_; }

  private:
    static FpTree MakeEmpty(Arena& arena);
    void ReserveNodes(std::size_t n);
    std::uint32_t NewNode(ItemId item, std::uint32_t parent);
    void Insert(const std::pair<std::uint32_t, ItemId>* ordered,
                std::size_t len, std::size_t count);

    // Structure-of-arrays node storage (index 0 = root).
    FlatVec<ItemId> item_;
    FlatVec<std::size_t> count_;
    FlatVec<std::uint32_t> parent_;
    FlatVec<std::uint32_t> next_link_;
    FlatVec<std::uint32_t> first_child_;
    FlatVec<std::uint32_t> next_sibling_;
    FlatVec<HeaderEntry> header_;
    std::size_t universe_ = 0;

    /// Set only by the compatibility Build(): keeps the storage alive for
    /// trees that do not borrow a caller arena.
    std::unique_ptr<Arena> owned_arena_;
};

}  // namespace dfp
