// FP-tree: the prefix-tree structure of Han, Pei & Yin (SIGMOD'00).
//
// Transactions are inserted with their items reordered by descending global
// frequency so that shared prefixes compress; per-item node links ("header
// table") let the miner extract conditional pattern bases without scanning
// the database again.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"

namespace dfp {

/// FP-tree over weighted transactions (counts let conditional trees reuse the
/// same builder).
class FpTree {
  public:
    /// An itemset with a multiplicity.
    struct WeightedTransaction {
        std::vector<ItemId> items;
        std::size_t count = 1;
    };

    struct Node {
        ItemId item = 0;
        std::size_t count = 0;
        Node* parent = nullptr;
        Node* next_link = nullptr;  // next node carrying the same item
        std::vector<Node*> children;
    };

    struct HeaderEntry {
        ItemId item = 0;
        std::size_t count = 0;  // total support of the item in this tree
        Node* head = nullptr;   // first node of the item's node-link chain
    };

    FpTree() = default;
    FpTree(FpTree&&) = default;
    FpTree& operator=(FpTree&&) = default;

    /// Builds the tree keeping only items with support >= min_sup.
    static FpTree Build(const std::vector<WeightedTransaction>& transactions,
                        std::size_t min_sup);

    /// True if the tree holds no frequent item.
    bool empty() const { return header_.empty(); }

    /// Header entries, sorted by descending support (insertion order). Mining
    /// iterates them in reverse (least-frequent first).
    const std::vector<HeaderEntry>& header() const { return header_; }

    /// The prefix paths of every node carrying header()[idx].item, as weighted
    /// transactions (the conditional pattern base).
    std::vector<WeightedTransaction> ConditionalBase(std::size_t idx) const;

    /// True if the tree is a single chain (enables subset enumeration).
    bool IsSinglePath() const;

    std::size_t num_nodes() const { return nodes_.size(); }

  private:
    Node* root_ = nullptr;
    std::deque<Node> nodes_;  // arena; deque keeps pointers stable
    std::vector<HeaderEntry> header_;

    Node* NewNode(ItemId item, Node* parent);
    void Insert(const std::vector<ItemId>& ordered_items, std::size_t count,
                const std::vector<std::size_t>& header_index);
};

}  // namespace dfp
