#include "fpm/fpgrowth.hpp"

#include <algorithm>
#include <atomic>

#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "fpm/fptree.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

// Per-task mining workspace: the conditional-tree arena (rewound, never
// freed, after each subtree), per-depth path buffers and the tree-build
// scratch. One per worker task so the parallel fan-out never touches the
// global allocator inside the recursion.
struct GrowthScratch {
    Arena arena;
    std::vector<FpTree::PathBuffer> bases;  // indexed by recursion depth
    FpTree::BuildScratch build;

    FpTree::PathBuffer& BaseAt(std::size_t depth) {
        if (depth >= bases.size()) bases.resize(depth + 1);
        return bases[depth];
    }
};

struct GrowthContext {
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<Pattern>* out;
    GrowthScratch* scratch;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
    // Set on parallel fan-out: pool-wide tallies so per-task guards enforce
    // the global pattern/memory caps. Null on the serial path.
    SharedMineProgress* shared = nullptr;
    // Instrumentation tallies, flushed to the registry once per Mine().
    std::size_t nodes_expanded = 0;    // header entries visited across all trees
    std::size_t cond_trees_built = 0;  // conditional FP-trees constructed
};

// The emitted-count / byte-estimate pair the guard should see: the pool-wide
// totals when fanning out, this context's own otherwise.
std::size_t GuardEmitted(const GrowthContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->emitted.load(std::memory_order_relaxed)
               : ctx.out->size();
}
std::size_t GuardBytes(const GrowthContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->est_bytes.load(std::memory_order_relaxed)
               : ctx.est_bytes;
}

void FlushGrowthMetrics(std::size_t nodes_expanded, std::size_t cond_trees_built,
                        std::size_t emitted, bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.nodes_expanded");
    static auto& trees =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.cond_trees_built");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.budget_aborts");
    nodes.Inc(nodes_expanded);
    trees.Inc(cond_trees_built);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
    PublishArenaMetrics();
}

// Emits `suffix ∪ {header[idx].item}` and recurses into its conditional tree.
// Factored out of Grow() so the parallel fan-out can run exactly one
// first-level iteration per task. Returns false when the budget fires.
bool GrowOne(const FpTree& tree, std::size_t idx, std::vector<ItemId>& suffix,
             GrowthContext& ctx);

// Recursively mines `tree`, emitting suffix ∪ {item} patterns. Returns false
// when the execution budget fires.
bool Grow(const FpTree& tree, std::vector<ItemId>& suffix, GrowthContext& ctx) {
    if (tree.empty()) return true;
    // Least-frequent items first, as in the original algorithm.
    const auto& header = tree.header();
    for (std::size_t idx = header.size(); idx-- > 0;) {
        if (!GrowOne(tree, idx, suffix, ctx)) return false;
    }
    return true;
}

bool GrowOne(const FpTree& tree, std::size_t idx, std::vector<ItemId>& suffix,
             GrowthContext& ctx) {
    const auto& entry = tree.header()[idx];
    ++ctx.nodes_expanded;
    if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
        BudgetBreach::kNone) {
        return false;
    }
    suffix.push_back(entry.item);
    Pattern p;
    p.items = suffix;
    std::sort(p.items.begin(), p.items.end());
    p.support = entry.count;
    const std::size_t bytes = sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    ctx.est_bytes += bytes;
    if (ctx.shared != nullptr) {
        ctx.shared->AddEmitted();
        ctx.shared->AddBytes(bytes);
    }
    ctx.out->push_back(std::move(p));

    if (suffix.size() < ctx.max_len) {
        // Conditional tree into the scratch arena, rewound after the subtree:
        // the whole recursion runs allocation-free against reused chunks.
        GrowthScratch& scratch = *ctx.scratch;
        FpTree::PathBuffer& base = scratch.BaseAt(suffix.size() - 1);
        tree.AppendConditionalBase(idx, &base);
        const Arena::Mark mark = scratch.arena.Position();
        const FpTree cond = FpTree::Build(base, ctx.min_sup, scratch.arena,
                                          tree.universe(), scratch.build);
        ++ctx.cond_trees_built;
        const bool ok = Grow(cond, suffix, ctx);
        scratch.arena.Rewind(mark);
        if (!ok) {
            suffix.pop_back();
            return false;
        }
    }
    suffix.pop_back();
    return true;
}

}  // namespace

Result<MineOutcome<Pattern>> FpGrowthMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());

    Arena tree_arena;
    FpTree::BuildScratch build_scratch;
    const FpTree tree =
        FpTree::BuildFromDb(db, min_sup, tree_arena, build_scratch);

    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), tree.header().size());
    MineOutcome<Pattern> outcome;
    std::size_t nodes = 0;
    std::size_t trees_built = 0;

    if (threads <= 1) {
        // Serial path: today's code, bit for bit.
        BudgetGuard guard(config.budget, config.max_patterns);
        std::vector<ItemId> suffix;
        GrowthScratch scratch;
        scratch.build = std::move(build_scratch);
        GrowthContext ctx{min_sup, config.max_pattern_len, &guard,
                          &outcome.patterns, &scratch};
        const bool ok = Grow(tree, suffix, ctx);
        if (!ok) outcome.breach = guard.breach();
        nodes = ctx.nodes_expanded;
        trees_built = ctx.cond_trees_built;
    } else {
        // Fan out over first-level conditional trees: task t owns header entry
        // header[H-1-t] (the serial reverse-header order), mines its whole
        // conditional subtree into a private slot, and the slots concatenate
        // in task order — reproducing the serial emission sequence exactly.
        const auto& header = tree.header();
        const std::size_t tasks_n = header.size();
        std::vector<std::vector<Pattern>> slots(tasks_n);
        std::vector<GrowthContext> contexts(tasks_n);
        std::vector<BudgetBreach> breaches(tasks_n, BudgetBreach::kNone);
        SharedMineProgress progress;
        DeadlineTimer timer(config.budget.time_budget_ms);

        ThreadPool pool(threads);
        TaskGroup group(pool);
        for (std::size_t t = 0; t < tasks_n; ++t) {
            group.Submit([&, t] {
                const std::size_t idx = tasks_n - 1 - t;
                BudgetGuard guard(TaskBudget(config.budget, timer),
                                  config.max_patterns);
                GrowthScratch scratch;
                GrowthContext& ctx = contexts[t];
                ctx.min_sup = min_sup;
                ctx.max_len = config.max_pattern_len;
                ctx.guard = &guard;
                ctx.out = &slots[t];
                ctx.scratch = &scratch;
                ctx.shared = &progress;
                std::vector<ItemId> suffix;
                if (!GrowOne(tree, idx, suffix, ctx)) {
                    breaches[t] = guard.breach();
                }
            });
        }
        group.Wait();

        std::size_t total = 0;
        for (const GrowthContext& ctx : contexts) {
            nodes += ctx.nodes_expanded;
            trees_built += ctx.cond_trees_built;
        }
        for (const auto& slot : slots) total += slot.size();
        outcome.patterns.reserve(total);
        for (std::size_t t = 0; t < tasks_n; ++t) {
            for (Pattern& p : slots[t]) outcome.patterns.push_back(std::move(p));
        }
        for (BudgetBreach b : breaches) {
            if (b != BudgetBreach::kNone) {
                outcome.breach = b;
                break;
            }
        }
    }

    if (outcome.truncated()) {
        FlushGrowthMetrics(nodes, trees_built, outcome.patterns.size(), true);
        RecordBreach("fpm.fpgrowth", outcome.breach,
                     static_cast<double>(outcome.patterns.size()));
        FilterPatterns(config, &outcome.patterns);
        return outcome;
    }
    FilterPatterns(config, &outcome.patterns);
    FlushGrowthMetrics(nodes, trees_built, outcome.patterns.size(), false);
    return outcome;
}

}  // namespace dfp
