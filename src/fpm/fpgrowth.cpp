#include "fpm/fpgrowth.hpp"

#include <algorithm>

#include "common/string_util.hpp"
#include "fpm/fptree.hpp"

namespace dfp {

namespace {

struct GrowthContext {
    std::size_t min_sup;
    std::size_t max_len;
    std::size_t budget;
    std::vector<Pattern>* out;
};

// Recursively mines `tree`, emitting suffix ∪ {item} patterns. Returns false
// when the pattern budget is exhausted.
bool Grow(const FpTree& tree, std::vector<ItemId>& suffix, GrowthContext& ctx) {
    if (tree.empty()) return true;
    // Least-frequent items first, as in the original algorithm.
    const auto& header = tree.header();
    for (std::size_t idx = header.size(); idx-- > 0;) {
        const auto& entry = header[idx];
        suffix.push_back(entry.item);
        if (ctx.out->size() >= ctx.budget) {
            suffix.pop_back();
            return false;
        }
        Pattern p;
        p.items = suffix;
        std::sort(p.items.begin(), p.items.end());
        p.support = entry.count;
        ctx.out->push_back(std::move(p));

        if (suffix.size() < ctx.max_len) {
            const FpTree cond =
                FpTree::Build(tree.ConditionalBase(idx), ctx.min_sup);
            if (!Grow(cond, suffix, ctx)) {
                suffix.pop_back();
                return false;
            }
        }
        suffix.pop_back();
    }
    return true;
}

}  // namespace

Result<std::vector<Pattern>> FpGrowthMiner::Mine(const TransactionDatabase& db,
                                                 const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());

    std::vector<FpTree::WeightedTransaction> txns;
    txns.reserve(db.num_transactions());
    for (const auto& t : db.transactions()) txns.push_back({t, 1});
    const FpTree tree = FpTree::Build(txns, min_sup);

    std::vector<Pattern> out;
    std::vector<ItemId> suffix;
    GrowthContext ctx{min_sup, config.max_pattern_len, config.max_patterns, &out};
    if (!Grow(tree, suffix, ctx)) {
        return Status::ResourceExhausted(
            StrFormat("fpgrowth exceeded pattern budget (%zu) at min_sup=%zu",
                      config.max_patterns, min_sup));
    }
    FilterPatterns(config, &out);
    return out;
}

}  // namespace dfp
