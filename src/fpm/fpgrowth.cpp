#include "fpm/fpgrowth.hpp"

#include <algorithm>

#include "common/string_util.hpp"
#include "fpm/fptree.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

struct GrowthContext {
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<Pattern>* out;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
    // Instrumentation tallies, flushed to the registry once per Mine().
    std::size_t nodes_expanded = 0;    // header entries visited across all trees
    std::size_t cond_trees_built = 0;  // conditional FP-trees constructed
};

void FlushGrowthMetrics(const GrowthContext& ctx, std::size_t emitted,
                        bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.nodes_expanded");
    static auto& trees =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.cond_trees_built");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.budget_aborts");
    nodes.Inc(ctx.nodes_expanded);
    trees.Inc(ctx.cond_trees_built);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Recursively mines `tree`, emitting suffix ∪ {item} patterns. Returns false
// when the execution budget fires.
bool Grow(const FpTree& tree, std::vector<ItemId>& suffix, GrowthContext& ctx) {
    if (tree.empty()) return true;
    // Least-frequent items first, as in the original algorithm.
    const auto& header = tree.header();
    for (std::size_t idx = header.size(); idx-- > 0;) {
        const auto& entry = header[idx];
        ++ctx.nodes_expanded;
        if (ctx.guard->Check(ctx.out->size(), ctx.est_bytes) !=
            BudgetBreach::kNone) {
            return false;
        }
        suffix.push_back(entry.item);
        Pattern p;
        p.items = suffix;
        std::sort(p.items.begin(), p.items.end());
        p.support = entry.count;
        ctx.est_bytes += sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
        ctx.out->push_back(std::move(p));

        if (suffix.size() < ctx.max_len) {
            const FpTree cond =
                FpTree::Build(tree.ConditionalBase(idx), ctx.min_sup);
            ++ctx.cond_trees_built;
            if (!Grow(cond, suffix, ctx)) {
                suffix.pop_back();
                return false;
            }
        }
        suffix.pop_back();
    }
    return true;
}

}  // namespace

Result<MineOutcome<Pattern>> FpGrowthMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());

    std::vector<FpTree::WeightedTransaction> txns;
    txns.reserve(db.num_transactions());
    for (const auto& t : db.transactions()) txns.push_back({t, 1});
    const FpTree tree = FpTree::Build(txns, min_sup);

    BudgetGuard guard(config.budget, config.max_patterns);
    MineOutcome<Pattern> outcome;
    std::vector<ItemId> suffix;
    GrowthContext ctx{min_sup, config.max_pattern_len, &guard, &outcome.patterns};
    if (!Grow(tree, suffix, ctx)) {
        outcome.breach = guard.breach();
        FlushGrowthMetrics(ctx, outcome.patterns.size(), /*budget_abort=*/true);
        RecordBreach("fpm.fpgrowth", outcome.breach,
                     static_cast<double>(outcome.patterns.size()));
        FilterPatterns(config, &outcome.patterns);
        return outcome;
    }
    FilterPatterns(config, &outcome.patterns);
    FlushGrowthMetrics(ctx, outcome.patterns.size(), /*budget_abort=*/false);
    return outcome;
}

}  // namespace dfp
