#include "fpm/fpgrowth.hpp"

#include <algorithm>

#include "common/string_util.hpp"
#include "fpm/fptree.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

struct GrowthContext {
    std::size_t min_sup;
    std::size_t max_len;
    std::size_t budget;
    std::vector<Pattern>* out;
    // Instrumentation tallies, flushed to the registry once per Mine().
    std::size_t nodes_expanded = 0;    // header entries visited across all trees
    std::size_t cond_trees_built = 0;  // conditional FP-trees constructed
};

void FlushGrowthMetrics(const GrowthContext& ctx, std::size_t emitted,
                        bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.nodes_expanded");
    static auto& trees =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.cond_trees_built");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.budget_aborts");
    nodes.Inc(ctx.nodes_expanded);
    trees.Inc(ctx.cond_trees_built);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
}

// Recursively mines `tree`, emitting suffix ∪ {item} patterns. Returns false
// when the pattern budget is exhausted.
bool Grow(const FpTree& tree, std::vector<ItemId>& suffix, GrowthContext& ctx) {
    if (tree.empty()) return true;
    // Least-frequent items first, as in the original algorithm.
    const auto& header = tree.header();
    for (std::size_t idx = header.size(); idx-- > 0;) {
        const auto& entry = header[idx];
        ++ctx.nodes_expanded;
        suffix.push_back(entry.item);
        if (ctx.out->size() >= ctx.budget) {
            suffix.pop_back();
            return false;
        }
        Pattern p;
        p.items = suffix;
        std::sort(p.items.begin(), p.items.end());
        p.support = entry.count;
        ctx.out->push_back(std::move(p));

        if (suffix.size() < ctx.max_len) {
            const FpTree cond =
                FpTree::Build(tree.ConditionalBase(idx), ctx.min_sup);
            ++ctx.cond_trees_built;
            if (!Grow(cond, suffix, ctx)) {
                suffix.pop_back();
                return false;
            }
        }
        suffix.pop_back();
    }
    return true;
}

}  // namespace

Result<std::vector<Pattern>> FpGrowthMiner::Mine(const TransactionDatabase& db,
                                                 const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());

    std::vector<FpTree::WeightedTransaction> txns;
    txns.reserve(db.num_transactions());
    for (const auto& t : db.transactions()) txns.push_back({t, 1});
    const FpTree tree = FpTree::Build(txns, min_sup);

    std::vector<Pattern> out;
    std::vector<ItemId> suffix;
    GrowthContext ctx{min_sup, config.max_pattern_len, config.max_patterns, &out};
    if (!Grow(tree, suffix, ctx)) {
        FlushGrowthMetrics(ctx, out.size(), /*budget_abort=*/true);
        return Status::ResourceExhausted(
            StrFormat("fpgrowth exceeded pattern budget (%zu) at min_sup=%zu",
                      config.max_patterns, min_sup));
    }
    FilterPatterns(config, &out);
    FlushGrowthMetrics(ctx, out.size(), /*budget_abort=*/false);
    return out;
}

}  // namespace dfp
