#include "fpm/fpgrowth.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "common/string_util.hpp"
#include "fpm/fptree.hpp"
#include "fpm/shard.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

// Per-task mining workspace: the conditional-tree arena (rewound, never
// freed, after each subtree), per-depth path buffers and the tree-build
// scratch. One per worker task so the parallel fan-out never touches the
// global allocator inside the recursion.
struct GrowthScratch {
    Arena arena;
    std::vector<FpTree::PathBuffer> bases;  // indexed by recursion depth
    FpTree::BuildScratch build;

    FpTree::PathBuffer& BaseAt(std::size_t depth) {
        if (depth >= bases.size()) bases.resize(depth + 1);
        return bases[depth];
    }
};

struct GrowthContext {
    std::size_t min_sup;
    std::size_t max_len;
    BudgetGuard* guard;
    std::vector<Pattern>* out;
    GrowthScratch* scratch;
    std::size_t est_bytes = 0;  // coarse output-memory estimate for the guard
    // Set on parallel fan-out: pool-wide tallies so per-task guards enforce
    // the global pattern/memory caps. Null on the serial path.
    SharedMineProgress* shared = nullptr;
    // Instrumentation tallies, flushed to the registry once per Mine().
    std::size_t nodes_expanded = 0;    // header entries visited across all trees
    std::size_t cond_trees_built = 0;  // conditional FP-trees constructed
};

// The emitted-count / byte-estimate pair the guard should see: the pool-wide
// totals when fanning out, this context's own otherwise.
std::size_t GuardEmitted(const GrowthContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->emitted.load(std::memory_order_relaxed)
               : ctx.out->size();
}
std::size_t GuardBytes(const GrowthContext& ctx) {
    return ctx.shared != nullptr
               ? ctx.shared->est_bytes.load(std::memory_order_relaxed)
               : ctx.est_bytes;
}

void FlushGrowthMetrics(std::size_t nodes_expanded, std::size_t cond_trees_built,
                        std::size_t emitted, bool budget_abort) {
    static auto& nodes =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.nodes_expanded");
    static auto& trees =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.cond_trees_built");
    static auto& patterns =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.patterns_emitted");
    static auto& aborts =
        obs::Registry::Get().GetCounter("dfp.fpm.fpgrowth.budget_aborts");
    nodes.Inc(nodes_expanded);
    trees.Inc(cond_trees_built);
    patterns.Inc(emitted);
    if (budget_abort) aborts.Inc();
    PublishArenaMetrics();
}

// Emits `suffix ∪ {header[idx].item}` and recurses into its conditional tree.
// Factored out of Grow() so the parallel fan-out can run exactly one
// first-level iteration per task. Returns false when the budget fires.
bool GrowOne(const FpTree& tree, std::size_t idx, std::vector<ItemId>& suffix,
             GrowthContext& ctx);

// Recursively mines `tree`, emitting suffix ∪ {item} patterns. Returns false
// when the execution budget fires.
bool Grow(const FpTree& tree, std::vector<ItemId>& suffix, GrowthContext& ctx) {
    if (tree.empty()) return true;
    // Least-frequent items first, as in the original algorithm.
    const auto& header = tree.header();
    for (std::size_t idx = header.size(); idx-- > 0;) {
        if (!GrowOne(tree, idx, suffix, ctx)) return false;
    }
    return true;
}

bool GrowOne(const FpTree& tree, std::size_t idx, std::vector<ItemId>& suffix,
             GrowthContext& ctx) {
    const auto& entry = tree.header()[idx];
    ++ctx.nodes_expanded;
    if (ctx.guard->Check(GuardEmitted(ctx), GuardBytes(ctx)) !=
        BudgetBreach::kNone) {
        return false;
    }
    suffix.push_back(entry.item);
    Pattern p;
    p.items = suffix;
    std::sort(p.items.begin(), p.items.end());
    p.support = entry.count;
    const std::size_t bytes = sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    ctx.est_bytes += bytes;
    if (ctx.shared != nullptr) {
        ctx.shared->AddEmitted();
        ctx.shared->AddBytes(bytes);
    }
    ctx.out->push_back(std::move(p));

    if (suffix.size() < ctx.max_len) {
        // Conditional tree into the scratch arena, rewound after the subtree:
        // the whole recursion runs allocation-free against reused chunks.
        GrowthScratch& scratch = *ctx.scratch;
        FpTree::PathBuffer& base = scratch.BaseAt(suffix.size() - 1);
        tree.AppendConditionalBase(idx, &base);
        const Arena::Mark mark = scratch.arena.Position();
        const FpTree cond = FpTree::Build(base, ctx.min_sup, scratch.arena,
                                          tree.universe(), scratch.build);
        ++ctx.cond_trees_built;
        const bool ok = Grow(cond, suffix, ctx);
        scratch.arena.Rewind(mark);
        if (!ok) {
            suffix.pop_back();
            return false;
        }
    }
    suffix.pop_back();
    return true;
}

// ---------------------------------------------------------------------------
// Parallel path: recursive task decomposition with sharded emission
// (DESIGN.md §17). The DFS mirrors Grow/GrowOne node for node — same
// iteration order, same guard placement, same emission contents — but a
// conditional subtree whose estimated work exceeds the split threshold is
// built into a heap-owned holder and re-submitted to the TaskGroup instead of
// being mined inline. Patterns flow into DFS-position-keyed shards whose
// merge reproduces the serial emission sequence exactly.
// ---------------------------------------------------------------------------

// A spawned subtree's conditional FP-tree and the arena that owns its nodes.
// Heap-allocated (shared_ptr in the task closure) because the spawning task's
// scratch arena is rewound when its frame returns.
struct CondHolder {
    Arena arena;
    FpTree tree;
};

// State shared by every task of one parallel mine.
struct ParGrowthShared {
    std::size_t min_sup = 0;
    std::size_t max_len = 0;
    std::size_t max_patterns = 0;
    std::size_t split_threshold = 0;
    const ExecutionBudget* budget = nullptr;
    DeadlineTimer timer;
    SharedMineProgress progress;
    ShardCollector shards;
    TaskGroup* group = nullptr;
    WorkerLocal<GrowthScratch>* scratch = nullptr;
    std::size_t num_workers = 0;
    std::atomic<int> breach{static_cast<int>(BudgetBreach::kNone)};
    std::atomic<std::uint64_t> nodes{0};
    std::atomic<std::uint64_t> trees{0};

    explicit ParGrowthShared(const MinerConfig& config, std::size_t min_sup_in)
        : min_sup(min_sup_in),
          max_len(config.max_pattern_len),
          max_patterns(config.max_patterns),
          split_threshold(config.split_work_threshold),
          budget(&config.budget),
          timer(config.budget.time_budget_ms) {}

    void RecordFirstBreach(BudgetBreach b) {
        int expected = static_cast<int>(BudgetBreach::kNone);
        breach.compare_exchange_strong(expected, static_cast<int>(b),
                                       std::memory_order_relaxed);
    }
};

// Per-task mining state (one stack frame chain, one guard, one emitter).
struct ParGrowCtx {
    ParGrowthShared* sh;
    BudgetGuard* guard;
    ShardEmitter* emitter;
    GrowthScratch* scratch;
    std::size_t slot;
    std::size_t nodes = 0;
    std::size_t trees = 0;
};

void RunGrowTask(ParGrowthShared* sh, const FpTree& tree,
                 std::vector<ItemId> suffix, ShardKey path, std::size_t slot);

bool ParGrowOne(ParGrowCtx& ctx, const FpTree& tree, std::size_t idx,
                std::vector<ItemId>& suffix);

bool ParGrow(ParGrowCtx& ctx, const FpTree& tree, std::vector<ItemId>& suffix) {
    if (tree.empty()) return true;
    const auto& header = tree.header();
    for (std::size_t idx = header.size(); idx-- > 0;) {
        if (!ParGrowOne(ctx, tree, idx, suffix)) return false;
    }
    return true;
}

bool ParGrowOne(ParGrowCtx& ctx, const FpTree& tree, std::size_t idx,
                std::vector<ItemId>& suffix) {
    ParGrowthShared& sh = *ctx.sh;
    const auto& entry = tree.header()[idx];
    ++ctx.nodes;
    if (ctx.guard->Check(
            sh.progress.emitted.load(std::memory_order_relaxed),
            sh.progress.est_bytes.load(std::memory_order_relaxed)) !=
        BudgetBreach::kNone) {
        return false;
    }
    // Rank = position in the serial reverse-header iteration.
    ctx.emitter->PushRank(
        static_cast<std::uint32_t>(tree.header().size() - 1 - idx));
    suffix.push_back(entry.item);
    Pattern p;
    p.items = suffix;
    std::sort(p.items.begin(), p.items.end());
    p.support = entry.count;
    const std::size_t bytes =
        sizeof(Pattern) + p.items.capacity() * sizeof(ItemId);
    sh.progress.AddEmitted();
    sh.progress.AddBytes(bytes);
    ctx.emitter->Emit(std::move(p));

    bool ok = true;
    if (suffix.size() < ctx.sh->max_len) {
        GrowthScratch& scratch = *ctx.scratch;
        FpTree::PathBuffer& base = scratch.BaseAt(suffix.size() - 1);
        tree.AppendConditionalBase(idx, &base);
        // Estimated subtree work: conditional-base rows × items that can
        // still extend the suffix (entries above idx in this tree's header).
        const std::size_t est = base.num_paths() * idx;
        if (est > sh.split_threshold) {
            // Split: build the conditional tree into its own holder (the
            // slot arena is rewound before the child runs) and hand the whole
            // subtree to the pool. Locality: the child lands on this worker's
            // own queue (LIFO pop → depth-first order) unless stolen.
            auto holder = std::make_shared<CondHolder>();
            holder->tree = FpTree::Build(base, sh.min_sup, holder->arena,
                                         tree.universe(), scratch.build);
            ++ctx.trees;
            ctx.emitter->Flush();  // contiguity rule: shard ends at the spawn
            ShardKey child_path = ctx.emitter->path();
            std::vector<ItemId> child_suffix = suffix;
            const std::size_t from = ctx.slot < sh.num_workers
                                         ? ctx.slot
                                         : ThreadPool::kNoQueue;
            sh.group->SubmitSlotted(
                [sh_ptr = &sh, holder = std::move(holder),
                 child_suffix = std::move(child_suffix),
                 child_path = std::move(child_path)](std::size_t slot) mutable {
                    RunGrowTask(sh_ptr, holder->tree, std::move(child_suffix),
                                std::move(child_path), slot);
                },
                from);
        } else {
            const Arena::Mark mark = scratch.arena.Position();
            const FpTree cond = FpTree::Build(base, sh.min_sup, scratch.arena,
                                              tree.universe(), scratch.build);
            ++ctx.trees;
            ok = ParGrow(ctx, cond, suffix);
            scratch.arena.Rewind(mark);
        }
    }
    suffix.pop_back();
    ctx.emitter->PopRank();
    return ok;
}

void RunGrowTask(ParGrowthShared* sh, const FpTree& tree,
                 std::vector<ItemId> suffix, ShardKey path, std::size_t slot) {
    BudgetGuard guard(TaskBudget(*sh->budget, sh->timer), sh->max_patterns);
    ShardEmitter emitter(&sh->shards, std::move(path));
    ParGrowCtx ctx{sh, &guard, &emitter, &sh->scratch->At(slot), slot};
    if (!ParGrow(ctx, tree, suffix)) sh->RecordFirstBreach(guard.breach());
    emitter.Flush();
    sh->nodes.fetch_add(ctx.nodes, std::memory_order_relaxed);
    sh->trees.fetch_add(ctx.trees, std::memory_order_relaxed);
}

}  // namespace

Result<MineOutcome<Pattern>> FpGrowthMiner::MineBudgeted(
    const TransactionDatabase& db, const MinerConfig& config) const {
    const std::size_t min_sup = ResolveMinSup(config, db.num_transactions());

    Arena tree_arena;
    FpTree::BuildScratch build_scratch;
    const FpTree tree =
        FpTree::BuildFromDb(db, min_sup, tree_arena, build_scratch);

    const std::size_t threads =
        std::min(ResolveNumThreads(config.num_threads), tree.header().size());
    MineOutcome<Pattern> outcome;
    std::size_t nodes = 0;
    std::size_t trees_built = 0;

    if (threads <= 1) {
        // Serial path: today's code, bit for bit.
        BudgetGuard guard(config.budget, config.max_patterns);
        std::vector<ItemId> suffix;
        GrowthScratch scratch;
        scratch.build = std::move(build_scratch);
        GrowthContext ctx{min_sup, config.max_pattern_len, &guard,
                          &outcome.patterns, &scratch};
        const bool ok = Grow(tree, suffix, ctx);
        if (!ok) outcome.breach = guard.breach();
        nodes = ctx.nodes_expanded;
        trees_built = ctx.cond_trees_built;
    } else {
        // Recursive decomposition (DESIGN.md §17): one root task walks the
        // tree in serial order; any conditional subtree whose estimated work
        // exceeds the split threshold is re-submitted to the TaskGroup, so
        // parallelism follows the (exponentially skewed) subtree sizes
        // instead of the first level's item count. Workers reuse per-slot
        // arenas/scratch across tasks; emissions land in DFS-keyed shards
        // whose merge reproduces the serial sequence bit for bit.
        ThreadPool pool(threads);
        WorkerLocal<GrowthScratch> scratch(pool.num_slots());
        TaskGroup group(pool);
        ParGrowthShared shared(config, min_sup);
        shared.group = &group;
        shared.scratch = &scratch;
        shared.num_workers = pool.num_workers();
        group.SubmitSlotted([&shared, &tree](std::size_t slot) {
            RunGrowTask(&shared, tree, {}, {}, slot);
        });
        group.Wait();

        shared.shards.MergeInto(&outcome.patterns);
        outcome.breach =
            static_cast<BudgetBreach>(shared.breach.load(std::memory_order_relaxed));
        nodes = shared.nodes.load(std::memory_order_relaxed);
        trees_built = shared.trees.load(std::memory_order_relaxed);
    }

    if (outcome.truncated()) {
        FlushGrowthMetrics(nodes, trees_built, outcome.patterns.size(), true);
        RecordBreach("fpm.fpgrowth", outcome.breach,
                     static_cast<double>(outcome.patterns.size()));
        FilterPatterns(config, &outcome.patterns);
        return outcome;
    }
    FilterPatterns(config, &outcome.patterns);
    FlushGrowthMetrics(nodes, trees_built, outcome.patterns.size(), false);
    return outcome;
}

}  // namespace dfp
