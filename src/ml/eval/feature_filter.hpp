// Single-feature selection by information gain (the Item_FS baseline of
// Tables 1–2, following Yang & Pedersen's feature-filtering methodology).
#pragma once

#include <cstddef>
#include <vector>

#include "core/measures.hpp"
#include "data/transaction_db.hpp"

namespace dfp {

/// Items whose one-item-feature relevance meets `threshold`, ascending ids.
std::vector<std::size_t> SelectItemsByRelevance(const TransactionDatabase& db,
                                                RelevanceMeasure measure,
                                                double threshold);

/// The k most relevant items (ties → smaller id), ascending ids.
std::vector<std::size_t> TopKItems(const TransactionDatabase& db,
                                   RelevanceMeasure measure, std::size_t k);

/// Relevance of every single item (index = item id).
std::vector<double> ItemRelevances(const TransactionDatabase& db,
                                   RelevanceMeasure measure);

}  // namespace dfp
