// Statistical significance utilities for cross-validation comparisons.
//
// The paper reports per-dataset accuracy differences; the honest way to call
// a difference real across CV folds is a paired t-test over the per-fold
// accuracies.
#pragma once

#include <cstddef>
#include <vector>

namespace dfp {

/// Result of a paired t-test over two paired samples.
struct PairedTTest {
    double mean_difference = 0.0;  ///< mean(a - b)
    double t_statistic = 0.0;
    std::size_t degrees_of_freedom = 0;
    /// Two-sided p-value (1.0 when undefined: < 2 pairs or zero variance with
    /// zero mean difference; 0.0 on zero variance with non-zero difference).
    double p_value = 1.0;
};

/// Paired t-test of H0: mean(a - b) = 0. Vectors must have equal length.
PairedTTest PairedTTestTwoSided(const std::vector<double>& a,
                                const std::vector<double>& b);

/// CDF of Student's t distribution with `df` degrees of freedom at `t`
/// (via the regularized incomplete beta function).
double StudentTCdf(double t, double df);

/// Regularized incomplete beta function I_x(a, b), continued-fraction form.
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace dfp
