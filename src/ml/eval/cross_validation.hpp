// Stratified k-fold cross validation (the paper's evaluation protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/classifier.hpp"

namespace dfp {

/// Splits row indices into k folds preserving the class distribution. Every
/// row lands in exactly one fold; fold sizes differ by at most one per class.
std::vector<std::vector<std::size_t>> StratifiedFolds(
    const std::vector<ClassLabel>& y, std::size_t k, Rng& rng);

struct CvResult {
    double mean_accuracy = 0.0;
    std::vector<double> fold_accuracies;
};

/// Trains a fresh model per fold on the complement and scores it on the fold.
/// `num_threads` > 1 trains the folds concurrently (0 = hardware_concurrency);
/// the fold split is fixed by `seed` before the fan-out and each fold's model
/// is independent, so accuracies are identical for every thread count.
CvResult CrossValidate(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                       std::size_t num_classes, const ClassifierFactory& factory,
                       std::size_t folds, std::uint64_t seed,
                       std::size_t num_threads = 1);

}  // namespace dfp
