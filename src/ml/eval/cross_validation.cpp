#include "ml/eval/cross_validation.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace dfp {

std::vector<std::vector<std::size_t>> StratifiedFolds(
    const std::vector<ClassLabel>& y, std::size_t k, Rng& rng) {
    std::vector<std::vector<std::size_t>> folds(k);
    // Group rows by class, shuffle each group, deal them round-robin.
    ClassLabel max_label = 0;
    for (ClassLabel label : y) max_label = std::max(max_label, label);
    std::vector<std::vector<std::size_t>> by_class(max_label + 1);
    for (std::size_t r = 0; r < y.size(); ++r) by_class[y[r]].push_back(r);

    std::size_t next_fold = 0;
    for (auto& group : by_class) {
        rng.Shuffle(group);
        for (std::size_t r : group) {
            folds[next_fold].push_back(r);
            next_fold = (next_fold + 1) % k;
        }
    }
    for (auto& fold : folds) std::sort(fold.begin(), fold.end());
    return folds;
}

CvResult CrossValidate(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                       std::size_t num_classes, const ClassifierFactory& factory,
                       std::size_t folds, std::uint64_t seed,
                       std::size_t num_threads) {
    Rng rng(seed);
    const auto fold_rows = StratifiedFolds(y, folds, rng);
    CvResult result;
    result.fold_accuracies.assign(folds, 0.0);

    // Each fold trains and scores independently against the precomputed
    // split, writing only its own accuracy slot — so the fold loop runs
    // unchanged whether chunked across workers or inline (the serial path).
    auto run_fold = [&](std::size_t f) {
        std::vector<std::size_t> train_rows;
        for (std::size_t g = 0; g < folds; ++g) {
            if (g == f) continue;
            train_rows.insert(train_rows.end(), fold_rows[g].begin(),
                              fold_rows[g].end());
        }
        const auto& test_rows = fold_rows[f];
        if (test_rows.empty() || train_rows.empty()) return;
        FeatureMatrix train_x = x.SelectRows(train_rows);
        std::vector<ClassLabel> train_y;
        train_y.reserve(train_rows.size());
        for (std::size_t r : train_rows) train_y.push_back(y[r]);

        auto model = factory();
        const Status st = model->Train(train_x, train_y, num_classes);
        if (!st.ok()) return;
        std::size_t correct = 0;
        for (std::size_t r : test_rows) {
            if (model->Predict(x.Row(r)) == y[r]) ++correct;
        }
        result.fold_accuracies[f] = static_cast<double>(correct) /
                                    static_cast<double>(test_rows.size());
    };

    const std::size_t threads = std::min(ResolveNumThreads(num_threads), folds);
    if (threads <= 1) {
        for (std::size_t f = 0; f < folds; ++f) run_fold(f);
    } else {
        ThreadPool pool(threads);
        ParallelFor(&pool, folds, [&](std::size_t begin, std::size_t end) {
            for (std::size_t f = begin; f < end; ++f) run_fold(f);
        });
    }

    double total = 0.0;
    for (double acc : result.fold_accuracies) total += acc;
    result.mean_accuracy =
        result.fold_accuracies.empty()
            ? 0.0
            : total / static_cast<double>(result.fold_accuracies.size());
    return result;
}

}  // namespace dfp
