#include "ml/eval/stats.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace dfp {

namespace {

// log Γ(x) via the Lanczos approximation (g = 7, n = 9 coefficients).
double LogGamma(double x) {
    static const double kCoefficients[] = {
        0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
        771.32342877765313,   -176.61502916214059, 12.507343278686905,
        -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
    if (x < 0.5) {
        // Reflection formula.
        return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
    }
    x -= 1.0;
    double a = kCoefficients[0];
    const double t = x + 7.5;
    for (int i = 1; i < 9; ++i) a += kCoefficients[i] / (x + i);
    return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

// Continued fraction for the incomplete beta function (Numerical Recipes
// betacf), evaluated with the modified Lentz method.
double BetaContinuedFraction(double a, double b, double x) {
    constexpr int kMaxIterations = 300;
    constexpr double kEpsilon = 3e-14;
    constexpr double kTiny = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEpsilon) break;
    }
    return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                            a * std::log(x) + b * std::log(1.0 - x);
    const double front = std::exp(ln_front);
    // Use the symmetry relation for faster convergence.
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * BetaContinuedFraction(a, b, x) / a;
    }
    return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
    if (df <= 0.0) return 0.5;
    const double x = df / (df + t * t);
    const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

PairedTTest PairedTTestTwoSided(const std::vector<double>& a,
                                const std::vector<double>& b) {
    assert(a.size() == b.size());
    PairedTTest result;
    const std::size_t n = a.size();
    if (n < 2) return result;
    result.degrees_of_freedom = n - 1;

    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += a[i] - b[i];
    mean /= static_cast<double>(n);
    result.mean_difference = mean;

    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = (a[i] - b[i]) - mean;
        ss += d * d;
    }
    const double variance = ss / static_cast<double>(n - 1);
    if (variance <= 0.0) {
        result.t_statistic = mean == 0.0
                                 ? 0.0
                                 : std::copysign(
                                       std::numeric_limits<double>::infinity(), mean);
        result.p_value = mean == 0.0 ? 1.0 : 0.0;
        return result;
    }
    result.t_statistic =
        mean / std::sqrt(variance / static_cast<double>(n));
    const double cdf =
        StudentTCdf(std::fabs(result.t_statistic),
                    static_cast<double>(result.degrees_of_freedom));
    result.p_value = 2.0 * (1.0 - cdf);
    return result;
}

}  // namespace dfp
