// Classification metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace dfp {

/// Row = true class, column = predicted class.
class ConfusionMatrix {
  public:
    explicit ConfusionMatrix(std::size_t num_classes)
        : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {}

    void Add(ClassLabel truth, ClassLabel predicted) {
        counts_[truth * num_classes_ + predicted]++;
    }

    std::size_t At(ClassLabel truth, ClassLabel predicted) const {
        return counts_[truth * num_classes_ + predicted];
    }

    std::size_t num_classes() const { return num_classes_; }
    std::size_t total() const;

    double Accuracy() const;
    /// Unweighted mean of per-class F1 (classes with no support excluded).
    double MacroF1() const;
    double PrecisionOf(ClassLabel c) const;
    double RecallOf(ClassLabel c) const;

    std::string ToString() const;

  private:
    std::size_t num_classes_;
    std::vector<std::size_t> counts_;
};

/// Fraction of equal entries in two parallel label vectors.
double AccuracyOf(const std::vector<ClassLabel>& truth,
                  const std::vector<ClassLabel>& predicted);

}  // namespace dfp
