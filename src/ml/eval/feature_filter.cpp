#include "ml/eval/feature_filter.hpp"

#include <algorithm>

namespace dfp {

std::vector<double> ItemRelevances(const TransactionDatabase& db,
                                   RelevanceMeasure measure) {
    std::vector<double> relevance(db.num_items(), 0.0);
    for (ItemId i = 0; i < db.num_items(); ++i) {
        relevance[i] = Relevance(measure, StatsOfCover(db, db.ItemCover(i)));
    }
    return relevance;
}

std::vector<std::size_t> SelectItemsByRelevance(const TransactionDatabase& db,
                                                RelevanceMeasure measure,
                                                double threshold) {
    const auto relevance = ItemRelevances(db, measure);
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < relevance.size(); ++i) {
        if (relevance[i] >= threshold) selected.push_back(i);
    }
    return selected;
}

std::vector<std::size_t> TopKItems(const TransactionDatabase& db,
                                   RelevanceMeasure measure, std::size_t k) {
    const auto relevance = ItemRelevances(db, measure);
    std::vector<std::size_t> order(relevance.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&relevance](std::size_t a, std::size_t b) {
        if (relevance[a] != relevance[b]) return relevance[a] > relevance[b];
        return a < b;
    });
    order.resize(std::min(k, order.size()));
    std::sort(order.begin(), order.end());
    return order;
}

}  // namespace dfp
