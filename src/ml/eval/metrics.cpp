#include "ml/eval/metrics.hpp"

#include <cassert>

#include "common/string_util.hpp"

namespace dfp {

std::size_t ConfusionMatrix::total() const {
    std::size_t t = 0;
    for (std::size_t c : counts_) t += c;
    return t;
}

double ConfusionMatrix::Accuracy() const {
    const std::size_t n = total();
    if (n == 0) return 0.0;
    std::size_t diag = 0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
        diag += counts_[c * num_classes_ + c];
    }
    return static_cast<double>(diag) / static_cast<double>(n);
}

double ConfusionMatrix::PrecisionOf(ClassLabel c) const {
    std::size_t predicted = 0;
    for (std::size_t t = 0; t < num_classes_; ++t) {
        predicted += counts_[t * num_classes_ + c];
    }
    if (predicted == 0) return 0.0;
    return static_cast<double>(At(c, c)) / static_cast<double>(predicted);
}

double ConfusionMatrix::RecallOf(ClassLabel c) const {
    std::size_t truth = 0;
    for (std::size_t p = 0; p < num_classes_; ++p) {
        truth += counts_[c * num_classes_ + p];
    }
    if (truth == 0) return 0.0;
    return static_cast<double>(At(c, c)) / static_cast<double>(truth);
}

double ConfusionMatrix::MacroF1() const {
    double sum = 0.0;
    std::size_t classes_with_support = 0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
        std::size_t truth = 0;
        for (std::size_t p = 0; p < num_classes_; ++p) {
            truth += counts_[c * num_classes_ + p];
        }
        if (truth == 0) continue;
        ++classes_with_support;
        const double prec = PrecisionOf(static_cast<ClassLabel>(c));
        const double rec = RecallOf(static_cast<ClassLabel>(c));
        if (prec + rec > 0.0) sum += 2.0 * prec * rec / (prec + rec);
    }
    return classes_with_support == 0
               ? 0.0
               : sum / static_cast<double>(classes_with_support);
}

std::string ConfusionMatrix::ToString() const {
    std::string out;
    for (std::size_t t = 0; t < num_classes_; ++t) {
        for (std::size_t p = 0; p < num_classes_; ++p) {
            out += StrFormat("%6zu", counts_[t * num_classes_ + p]);
        }
        out += "\n";
    }
    return out;
}

double AccuracyOf(const std::vector<ClassLabel>& truth,
                  const std::vector<ClassLabel>& predicted) {
    assert(truth.size() == predicted.size());
    if (truth.empty()) return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (truth[i] == predicted[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace dfp
