// HARMONY-style instance-centric rule classifier (Wang & Karypis, SDM'05).
//
// The paper's Section 5 compares its framework against HARMONY ("our
// classification accuracy is significantly higher, e.g., up to 11.94% on
// Waveform"). HARMONY's defining idea is *instance-centric* rule selection:
// instead of a global confidence-ordered cover (CBA), it guarantees that for
// every training instance one of the highest-confidence rules covering it is
// kept. Prediction scores each class by the top-K covering rules' confidences.
//
// This implementation mines candidate rules from closed frequent patterns
// (pattern → majority class) and then performs the instance-centric
// selection; it is the stand-in comparator for the related-work bench.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"
#include "fpm/miner.hpp"

namespace dfp {

struct HarmonyConfig {
    MinerConfig miner;
    /// Keep the top-K highest-confidence rules per training instance.
    std::size_t rules_per_instance = 1;
    /// Rules per class used at prediction time (score = sum of confidences).
    std::size_t prediction_rules = 5;
    double min_confidence = 0.5;
};

struct HarmonyRule {
    Itemset antecedent;
    ClassLabel consequent = 0;
    double confidence = 0.0;
    std::size_t support = 0;
};

/// Instance-centric rule classifier.
class HarmonyClassifier {
  public:
    explicit HarmonyClassifier(HarmonyConfig config = {})
        : config_(std::move(config)) {}

    Status Train(const TransactionDatabase& train);
    ClassLabel Predict(const std::vector<ItemId>& transaction) const;
    double Accuracy(const TransactionDatabase& test) const;

    const std::vector<HarmonyRule>& rules() const { return rules_; }
    ClassLabel default_class() const { return default_class_; }

  private:
    HarmonyConfig config_;
    std::vector<HarmonyRule> rules_;  // sorted by confidence desc
    ClassLabel default_class_ = 0;
};

}  // namespace dfp
