#include "ml/rules/cba.hpp"

#include <algorithm>

#include "fpm/closed_miner.hpp"

namespace dfp {

Status CbaClassifier::Train(const TransactionDatabase& train) {
    if (train.num_transactions() == 0) {
        return Status::InvalidArgument("empty training database");
    }
    rules_.clear();

    ClosedMiner miner;
    auto mined = miner.Mine(train, config_.miner);
    if (!mined.ok()) return mined.status();
    std::vector<Pattern> patterns = std::move(mined).value();
    AttachMetadata(train, &patterns);

    // Candidate rules: pattern → its majority class, confidence-filtered.
    std::vector<CbaRule> candidates;
    for (const Pattern& p : patterns) {
        CbaRule rule;
        rule.antecedent = p.items;
        rule.consequent = p.MajorityClass();
        rule.confidence = p.Confidence();
        rule.support = p.class_counts[rule.consequent];
        if (rule.confidence >= config_.min_confidence) {
            candidates.push_back(std::move(rule));
        }
    }
    // CBA total order: confidence desc, support desc, shorter antecedent first.
    std::sort(candidates.begin(), candidates.end(),
              [](const CbaRule& a, const CbaRule& b) {
                  if (a.confidence != b.confidence) return a.confidence > b.confidence;
                  if (a.support != b.support) return a.support > b.support;
                  if (a.antecedent.size() != b.antecedent.size()) {
                      return a.antecedent.size() < b.antecedent.size();
                  }
                  return a.antecedent < b.antecedent;
              });
    if (candidates.size() > config_.max_rules) {
        candidates.resize(config_.max_rules);
    }

    // CBA-CB M1 covering pass.
    std::vector<char> covered(train.num_transactions(), 0);
    std::size_t uncovered = train.num_transactions();
    for (CbaRule& rule : candidates) {
        if (uncovered == 0) break;
        bool keeps = false;
        for (std::size_t t = 0; t < train.num_transactions(); ++t) {
            if (covered[t]) continue;
            if (train.label(t) == rule.consequent &&
                train.Contains(t, rule.antecedent)) {
                keeps = true;
                break;
            }
        }
        if (!keeps) continue;
        rules_.push_back(rule);
        for (std::size_t t = 0; t < train.num_transactions(); ++t) {
            if (!covered[t] && train.Contains(t, rule.antecedent)) {
                covered[t] = 1;
                --uncovered;
            }
        }
    }

    // Default class: majority among uncovered instances (or overall majority).
    std::vector<std::size_t> rest(train.num_classes(), 0);
    for (std::size_t t = 0; t < train.num_transactions(); ++t) {
        if (!covered[t]) rest[train.label(t)]++;
    }
    if (uncovered == 0) rest = train.ClassCounts();
    std::size_t best = 0;
    for (std::size_t c = 1; c < rest.size(); ++c) {
        if (rest[c] > rest[best]) best = c;
    }
    default_class_ = static_cast<ClassLabel>(best);
    return Status::Ok();
}

ClassLabel CbaClassifier::Predict(const std::vector<ItemId>& transaction) const {
    for (const CbaRule& rule : rules_) {
        if (std::includes(transaction.begin(), transaction.end(),
                          rule.antecedent.begin(), rule.antecedent.end())) {
            return rule.consequent;
        }
    }
    return default_class_;
}

double CbaClassifier::Accuracy(const TransactionDatabase& test) const {
    if (test.num_transactions() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        if (Predict(test.transaction(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test.num_transactions());
}

}  // namespace dfp
