#include "ml/rules/harmony.hpp"

#include <algorithm>
#include <set>

#include "fpm/closed_miner.hpp"

namespace dfp {

Status HarmonyClassifier::Train(const TransactionDatabase& train) {
    if (train.num_transactions() == 0) {
        return Status::InvalidArgument("empty training database");
    }
    rules_.clear();

    ClosedMiner miner;
    auto mined = miner.Mine(train, config_.miner);
    if (!mined.ok()) return mined.status();
    std::vector<Pattern> patterns = std::move(*mined);
    AttachMetadata(train, &patterns);

    // Candidate rules, confidence-filtered, sorted by (confidence, support).
    struct Candidate {
        HarmonyRule rule;
        const Pattern* pattern;
    };
    std::vector<Candidate> candidates;
    for (const Pattern& p : patterns) {
        HarmonyRule rule;
        rule.antecedent = p.items;
        rule.consequent = p.MajorityClass();
        rule.confidence = p.Confidence();
        rule.support = p.class_counts[rule.consequent];
        if (rule.confidence < config_.min_confidence) continue;
        candidates.push_back({std::move(rule), &p});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  if (a.rule.confidence != b.rule.confidence) {
                      return a.rule.confidence > b.rule.confidence;
                  }
                  if (a.rule.support != b.rule.support) {
                      return a.rule.support > b.rule.support;
                  }
                  return a.rule.antecedent < b.rule.antecedent;
              });

    // Instance-centric selection: walking rules from the most confident down,
    // keep a rule iff some instance it correctly covers still needs one of its
    // top-K rules. This guarantees each instance retains (up to) the K most
    // confident rules that cover it.
    std::vector<std::size_t> needed(train.num_transactions(),
                                    config_.rules_per_instance);
    std::set<std::size_t> kept;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Candidate& c = candidates[i];
        bool keep = false;
        c.pattern->cover.ForEach([&](std::uint32_t t) {
            if (train.label(t) == c.rule.consequent && needed[t] > 0) {
                needed[t]--;
                keep = true;
            }
        });
        if (keep) kept.insert(i);
    }
    rules_.reserve(kept.size());
    for (std::size_t i : kept) rules_.push_back(candidates[i].rule);
    // `kept` iterates ascending candidate index == descending confidence order.

    default_class_ = static_cast<ClassLabel>([&train] {
        const auto counts = train.ClassCounts();
        std::size_t best = 0;
        for (std::size_t c = 1; c < counts.size(); ++c) {
            if (counts[c] > counts[best]) best = c;
        }
        return best;
    }());
    return Status::Ok();
}

ClassLabel HarmonyClassifier::Predict(const std::vector<ItemId>& transaction) const {
    // Score each class by its top prediction_rules covering rules.
    std::vector<double> score;
    std::vector<std::size_t> used;
    std::size_t num_classes = 0;
    for (const HarmonyRule& r : rules_) {
        num_classes = std::max<std::size_t>(num_classes, r.consequent + 1);
    }
    num_classes = std::max<std::size_t>(num_classes, default_class_ + 1);
    score.assign(num_classes, 0.0);
    used.assign(num_classes, 0);

    bool any = false;
    for (const HarmonyRule& r : rules_) {  // confidence-descending
        if (used[r.consequent] >= config_.prediction_rules) continue;
        if (std::includes(transaction.begin(), transaction.end(),
                          r.antecedent.begin(), r.antecedent.end())) {
            score[r.consequent] += r.confidence;
            used[r.consequent]++;
            any = true;
        }
    }
    if (!any) return default_class_;
    std::size_t best = 0;
    for (std::size_t c = 1; c < score.size(); ++c) {
        if (score[c] > score[best]) best = c;
    }
    return static_cast<ClassLabel>(best);
}

double HarmonyClassifier::Accuracy(const TransactionDatabase& test) const {
    if (test.num_transactions() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        if (Predict(test.transaction(t)) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.num_transactions());
}

}  // namespace dfp
