// CBA-style associative classifier (Liu, Hsu & Ma, KDD'98).
//
// The related-work baseline the paper contrasts its framework against
// (Section 5 compares to rule-based classifiers like CBA/CMAR/HARMONY).
// Class-association rules (pattern → majority class) are ranked by
// (confidence, support, shorter antecedent), then the CBA-CB M1 covering pass
// keeps each rule that correctly classifies at least one still-uncovered
// training instance; a default class absorbs the remainder. Prediction fires
// the first matching rule.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/transaction_db.hpp"
#include "fpm/itemset.hpp"
#include "fpm/miner.hpp"

namespace dfp {

struct CbaConfig {
    MinerConfig miner;          ///< candidate pattern mining parameters
    double min_confidence = 0.5;
    std::size_t max_rules = 100000;
};

/// One class-association rule.
struct CbaRule {
    Itemset antecedent;
    ClassLabel consequent = 0;
    double confidence = 0.0;
    std::size_t support = 0;
};

/// Rule-list classifier over raw transactions (not the vector feature space —
/// that distinction is the point of the comparison).
class CbaClassifier {
  public:
    explicit CbaClassifier(CbaConfig config = {}) : config_(std::move(config)) {}

    /// Mines rules from `train` and runs the covering pass.
    Status Train(const TransactionDatabase& train);

    /// First-matching-rule prediction (default class when nothing fires).
    ClassLabel Predict(const std::vector<ItemId>& transaction) const;

    double Accuracy(const TransactionDatabase& test) const;

    const std::vector<CbaRule>& rules() const { return rules_; }
    ClassLabel default_class() const { return default_class_; }

  private:
    CbaConfig config_;
    std::vector<CbaRule> rules_;
    ClassLabel default_class_ = 0;
};

}  // namespace dfp
