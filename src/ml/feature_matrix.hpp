// Dense row-major feature matrix consumed by the learners.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace dfp {

/// Row-major dense matrix of doubles.
class FeatureMatrix {
  public:
    FeatureMatrix() = default;
    FeatureMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    std::span<const double> Row(std::size_t r) const {
        return {data_.data() + r * cols_, cols_};
    }
    std::span<double> MutableRow(std::size_t r) {
        return {data_.data() + r * cols_, cols_};
    }

    /// Copies the selected rows into a new matrix.
    FeatureMatrix SelectRows(const std::vector<std::size_t>& rows) const;
    /// Copies the selected columns into a new matrix.
    FeatureMatrix SelectCols(const std::vector<std::size_t>& cols) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Dot product of two equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance of two equal-length spans.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

}  // namespace dfp
