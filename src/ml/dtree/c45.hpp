// C4.5-style decision tree (our Weka J48 substitute).
//
// Binary threshold splits chosen by gain ratio (Quinlan 1993), with the
// standard guards (minimum leaf size, average-gain prefilter) and C4.5's
// pessimistic error-based subtree pruning using the upper confidence bound of
// the binomial error rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace dfp {

struct C45Config {
    std::size_t min_leaf = 2;     ///< minimum instances on each side of a split
    std::size_t max_depth = 60;   ///< hard recursion cap
    double min_gain = 1e-7;       ///< minimum info gain to accept a split
    bool prune = true;            ///< pessimistic error pruning
    double confidence = 0.25;     ///< C4.5 pruning confidence factor
};

/// Gain-ratio decision tree over dense features (binary 0/1 item features are
/// the common case in this framework; arbitrary numeric features also work).
class C45Classifier : public Classifier {
  public:
    explicit C45Classifier(C45Config config = {}) : config_(config) {}

    std::string Name() const override { return "c4.5"; }
    std::string TypeId() const override { return "c4.5"; }
    Status Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                 std::size_t num_classes) override;
    ClassLabel Predict(std::span<const double> x) const override;
    Status SaveModel(std::ostream& out) const override;
    Status LoadModel(std::istream& in) override;

    std::size_t num_nodes() const { return nodes_.size(); }
    std::size_t num_leaves() const;
    std::size_t depth() const;

    /// Indented text rendering ("f3 <= 0.5: c1 (42/3)" style) for inspection.
    std::string ToText(const std::vector<std::string>* feature_names = nullptr) const;

  private:
    struct Node {
        bool leaf = true;
        ClassLabel label = 0;       ///< majority class at this node
        std::size_t count = 0;      ///< training instances reaching the node
        std::size_t errors = 0;     ///< training misclassifications as a leaf
        std::size_t feature = 0;    ///< split feature (internal nodes)
        double threshold = 0.0;     ///< go left iff x[feature] <= threshold
        std::int32_t left = -1;
        std::int32_t right = -1;
    };

    std::int32_t BuildNode(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                           std::vector<std::size_t>& rows, std::size_t depth);
    /// Returns the pessimistic error estimate of the subtree; prunes in place.
    double PruneNode(std::int32_t idx);
    std::size_t DepthOf(std::int32_t idx) const;
    void TextOf(std::int32_t idx, std::size_t indent,
                const std::vector<std::string>* names, std::string* out) const;

    C45Config config_;
    std::size_t num_classes_ = 0;
    std::vector<Node> nodes_;
    std::int32_t root_ = -1;
};

/// Upper confidence bound on an error rate with e errors out of n, at C4.5's
/// confidence factor cf (normal approximation, as in J48). Exposed for tests.
double PessimisticErrorRate(double e, double n, double cf);

}  // namespace dfp
