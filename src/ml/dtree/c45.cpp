#include "ml/dtree/c45.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "common/string_util.hpp"

namespace dfp {

namespace {

// z-value of the standard normal upper tail for probability cf, via the
// rational approximation of Abramowitz & Stegun 26.2.23 (|err| < 4.5e-4).
double UpperTailZ(double cf) {
    const double t = std::sqrt(-2.0 * std::log(cf));
    return t - (2.515517 + 0.802853 * t + 0.010328 * t * t) /
                   (1.0 + 1.432788 * t + 0.189269 * t * t + 0.001308 * t * t * t);
}

// Majority label and error count of a class histogram.
std::pair<ClassLabel, std::size_t> MajorityOf(const std::vector<std::size_t>& hist) {
    std::size_t best = 0;
    std::size_t total = 0;
    for (std::size_t c = 0; c < hist.size(); ++c) {
        total += hist[c];
        if (hist[c] > hist[best]) best = c;
    }
    return {static_cast<ClassLabel>(best), total - hist[best]};
}

}  // namespace

double PessimisticErrorRate(double e, double n, double cf) {
    if (n <= 0.0) return 0.0;
    const double z = UpperTailZ(cf);
    const double f = e / n;
    const double z2 = z * z;
    const double numerator =
        f + z2 / (2.0 * n) +
        z * std::sqrt(std::max(0.0, f / n - f * f / n + z2 / (4.0 * n * n)));
    return std::min(1.0, numerator / (1.0 + z2 / n));
}

Status C45Classifier::Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                            std::size_t num_classes) {
    if (x.rows() == 0) return Status::InvalidArgument("empty training set");
    if (x.rows() != y.size()) {
        return Status::InvalidArgument("C4.5 label/row count mismatch");
    }
    nodes_.clear();
    num_classes_ = num_classes;
    std::vector<std::size_t> rows(x.rows());
    for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
    root_ = BuildNode(x, y, rows, 0);
    if (config_.prune) PruneNode(root_);
    return Status::Ok();
}

std::int32_t C45Classifier::BuildNode(const FeatureMatrix& x,
                                      const std::vector<ClassLabel>& y,
                                      std::vector<std::size_t>& rows,
                                      std::size_t depth) {
    std::vector<std::size_t> hist(num_classes_, 0);
    for (std::size_t r : rows) hist[y[r]]++;
    const auto [majority, errors] = MajorityOf(hist);

    const std::int32_t idx = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[idx].label = majority;
    nodes_[idx].count = rows.size();
    nodes_[idx].errors = errors;

    const double h_parent = EntropyCounts(hist);
    if (errors == 0 || depth >= config_.max_depth ||
        rows.size() < 2 * config_.min_leaf || h_parent <= 0.0) {
        return idx;  // pure / too small / too deep: leaf
    }

    // Best gain-ratio split across all features and thresholds.
    double best_ratio = 0.0;
    double best_gain = 0.0;
    std::size_t best_feature = 0;
    double best_threshold = 0.0;
    bool found = false;

    const double n = static_cast<double>(rows.size());
    std::vector<std::pair<double, ClassLabel>> column(rows.size());
    std::vector<std::size_t> left_hist(num_classes_);
    std::vector<std::size_t> right_hist(num_classes_);
    // Evaluates the candidate split (f, threshold) given the left histogram.
    auto consider = [&](std::size_t f, double threshold, std::size_t left_n) {
        if (left_n < config_.min_leaf || rows.size() - left_n < config_.min_leaf) {
            return;
        }
        const double nl = static_cast<double>(left_n);
        const double nr = n - nl;
        for (std::size_t c = 0; c < num_classes_; ++c) {
            right_hist[c] = hist[c] - left_hist[c];
        }
        const double gain = h_parent - (nl / n) * EntropyCounts(left_hist) -
                            (nr / n) * EntropyCounts(right_hist);
        if (gain <= config_.min_gain) return;
        const double split_info = -XLog2X(nl / n) - XLog2X(nr / n);
        if (split_info <= 0.0) return;
        const double ratio = gain / split_info;
        if (ratio > best_ratio) {
            best_ratio = ratio;
            best_gain = gain;
            best_feature = f;
            best_threshold = threshold;
            found = true;
        }
    };
    for (std::size_t f = 0; f < x.cols(); ++f) {
        // Fast path for binary 0/1 features (the common case in the pattern
        // feature space): one counting pass, single threshold, no sort.
        bool binary = true;
        std::fill(left_hist.begin(), left_hist.end(), 0);
        std::size_t zeros = 0;
        for (std::size_t r : rows) {
            const double v = x.At(r, f);
            if (v == 0.0) {
                left_hist[y[r]]++;
                ++zeros;
            } else if (v != 1.0) {
                binary = false;
                break;
            }
        }
        if (binary) {
            if (zeros != 0 && zeros != rows.size()) consider(f, 0.5, zeros);
            continue;
        }
        for (std::size_t i = 0; i < rows.size(); ++i) {
            column[i] = {x.At(rows[i], f), y[rows[i]]};
        }
        std::sort(column.begin(), column.end());
        if (column.front().first == column.back().first) continue;  // constant

        std::fill(left_hist.begin(), left_hist.end(), 0);
        std::size_t left_n = 0;
        for (std::size_t i = 0; i + 1 < column.size(); ++i) {
            left_hist[column[i].second]++;
            ++left_n;
            if (column[i].first == column[i + 1].first) continue;
            consider(f, 0.5 * (column[i].first + column[i + 1].first), left_n);
        }
    }
    (void)best_gain;
    if (!found) return idx;

    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    for (std::size_t r : rows) {
        if (x.At(r, best_feature) <= best_threshold) {
            left_rows.push_back(r);
        } else {
            right_rows.push_back(r);
        }
    }
    rows.clear();
    rows.shrink_to_fit();  // release before recursing

    const std::int32_t left = BuildNode(x, y, left_rows, depth + 1);
    const std::int32_t right = BuildNode(x, y, right_rows, depth + 1);
    nodes_[idx].leaf = false;
    nodes_[idx].feature = best_feature;
    nodes_[idx].threshold = best_threshold;
    nodes_[idx].left = left;
    nodes_[idx].right = right;
    return idx;
}

double C45Classifier::PruneNode(std::int32_t idx) {
    Node& node = nodes_[idx];
    const double n = static_cast<double>(node.count);
    const double leaf_estimate =
        PessimisticErrorRate(static_cast<double>(node.errors), n,
                             config_.confidence) *
        n;
    if (node.leaf) return leaf_estimate;
    const double subtree_estimate =
        PruneNode(node.left) + PruneNode(node.right);
    if (leaf_estimate <= subtree_estimate + 0.1) {
        node.leaf = true;  // children stay allocated but unreachable
        return leaf_estimate;
    }
    return subtree_estimate;
}

ClassLabel C45Classifier::Predict(std::span<const double> x) const {
    std::int32_t idx = root_;
    while (idx >= 0 && !nodes_[idx].leaf) {
        const Node& node = nodes_[idx];
        idx = (x[node.feature] <= node.threshold) ? node.left : node.right;
    }
    return idx >= 0 ? nodes_[idx].label : 0;
}

std::size_t C45Classifier::num_leaves() const {
    if (root_ < 0) return 0;
    std::size_t leaves = 0;
    std::vector<std::int32_t> stack = {root_};
    while (!stack.empty()) {
        const std::int32_t idx = stack.back();
        stack.pop_back();
        if (nodes_[idx].leaf) {
            ++leaves;
        } else {
            stack.push_back(nodes_[idx].left);
            stack.push_back(nodes_[idx].right);
        }
    }
    return leaves;
}

std::size_t C45Classifier::DepthOf(std::int32_t idx) const {
    if (idx < 0 || nodes_[idx].leaf) return 0;
    return 1 + std::max(DepthOf(nodes_[idx].left), DepthOf(nodes_[idx].right));
}

std::size_t C45Classifier::depth() const { return root_ < 0 ? 0 : DepthOf(root_); }

void C45Classifier::TextOf(std::int32_t idx, std::size_t indent,
                           const std::vector<std::string>* names,
                           std::string* out) const {
    const Node& node = nodes_[idx];
    const std::string pad(indent * 2, ' ');
    if (node.leaf) {
        *out += StrFormat("%sclass %u (%zu/%zu)\n", pad.c_str(), node.label,
                          node.count, node.errors);
        return;
    }
    const std::string fname = (names != nullptr && node.feature < names->size())
                                  ? (*names)[node.feature]
                                  : StrFormat("f%zu", node.feature);
    *out += StrFormat("%s%s <= %g:\n", pad.c_str(), fname.c_str(), node.threshold);
    TextOf(node.left, indent + 1, names, out);
    *out += StrFormat("%s%s >  %g:\n", pad.c_str(), fname.c_str(), node.threshold);
    TextOf(node.right, indent + 1, names, out);
}

std::string C45Classifier::ToText(const std::vector<std::string>* feature_names) const {
    std::string out;
    if (root_ >= 0) TextOf(root_, 0, feature_names, &out);
    return out;
}

}  // namespace dfp

// ---- Serialization ---------------------------------------------------------

#include "common/serialize.hpp"

namespace dfp {

Status C45Classifier::SaveModel(std::ostream& out) const {
    out << "c45-model " << num_classes_ << ' ' << root_ << ' ' << nodes_.size()
        << '\n';
    for (const Node& node : nodes_) {
        out << (node.leaf ? 1 : 0) << ' ' << node.label << ' ' << node.count << ' '
            << node.errors << ' ' << node.feature << ' ';
        WriteDouble(out, node.threshold);
        out << ' ' << node.left << ' ' << node.right << '\n';
    }
    if (!out) return Status::Internal("C4.5 model write failed");
    return Status::Ok();
}

Status C45Classifier::LoadModel(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect("c45-model"));
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_classes_));
    DFP_RETURN_NOT_OK(reader.Read(&root_));
    std::size_t count = 0;
    DFP_RETURN_NOT_OK(reader.ReadCount(&count));
    nodes_.assign(count, Node{});
    for (Node& node : nodes_) {
        std::size_t leaf = 0;
        DFP_RETURN_NOT_OK(reader.Read(&leaf));
        node.leaf = leaf != 0;
        DFP_RETURN_NOT_OK(reader.Read(&node.label));
        DFP_RETURN_NOT_OK(reader.Read(&node.count));
        DFP_RETURN_NOT_OK(reader.Read(&node.errors));
        DFP_RETURN_NOT_OK(reader.Read(&node.feature));
        DFP_RETURN_NOT_OK(reader.Read(&node.threshold));
        DFP_RETURN_NOT_OK(reader.Read(&node.left));
        DFP_RETURN_NOT_OK(reader.Read(&node.right));
        if (!node.leaf &&
            (node.left < 0 || node.right < 0 ||
             node.left >= static_cast<std::int32_t>(count) ||
             node.right >= static_cast<std::int32_t>(count))) {
            return Status::ParseError("C4.5 model child index out of range");
        }
    }
    if (root_ >= static_cast<std::int32_t>(count)) {
        return Status::ParseError("C4.5 model root out of range");
    }
    return Status::Ok();
}

}  // namespace dfp
