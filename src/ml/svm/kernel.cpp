#include "ml/svm/kernel.hpp"

#include <cmath>

#include "common/string_util.hpp"
#include "ml/feature_matrix.hpp"

namespace dfp {

double KernelEval(const KernelParams& params, std::span<const double> a,
                  std::span<const double> b) {
    switch (params.type) {
        case KernelType::kLinear:
            return Dot(a, b);
        case KernelType::kRbf:
            return std::exp(-params.gamma * SquaredDistance(a, b));
        case KernelType::kPolynomial:
            return std::pow(params.gamma * Dot(a, b) + params.coef0, params.degree);
    }
    return 0.0;
}

std::string KernelName(const KernelParams& params) {
    switch (params.type) {
        case KernelType::kLinear: return "linear";
        case KernelType::kRbf: return StrFormat("rbf(gamma=%g)", params.gamma);
        case KernelType::kPolynomial:
            return StrFormat("poly(gamma=%g,coef0=%g,degree=%d)", params.gamma,
                             params.coef0, params.degree);
    }
    return "?";
}

}  // namespace dfp
