// Kernel functions for the SVM (the paper uses LIBSVM's linear and RBF).
#pragma once

#include <span>
#include <string>

namespace dfp {

enum class KernelType { kLinear, kRbf, kPolynomial };

struct KernelParams {
    KernelType type = KernelType::kLinear;
    /// RBF: K(x,y) = exp(−γ‖x−y‖²); polynomial: (γ·x·y + coef0)^degree.
    double gamma = 0.5;
    double coef0 = 0.0;
    int degree = 3;
};

/// Evaluates K(a, b).
double KernelEval(const KernelParams& params, std::span<const double> a,
                  std::span<const double> b);

/// "linear", "rbf(γ=0.5)", ...
std::string KernelName(const KernelParams& params);

}  // namespace dfp
