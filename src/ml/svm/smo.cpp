#include "ml/svm/smo.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace dfp {

namespace {

// Bounded LRU cache of full kernel rows for solves where the n×n Gram does
// not fit (n > gram_limit). Rows live in one preallocated slab; the LRU list
// is intrusive (prev/next slot arrays), so a hit is a map lookup plus a list
// splice — no allocation anywhere after Init(). Capacity is at least two so
// the working pair of a TakeStep is always co-resident; Get() additionally
// takes the partner row as `pinned` and never evicts it.
class KernelRowCache {
  public:
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    void Init(std::size_t n, std::size_t cache_bytes) {
        n_ = n;
        const std::size_t row_bytes = n * sizeof(double);
        capacity_ = std::min(n, std::max<std::size_t>(2, cache_bytes / row_bytes));
        slab_.assign(capacity_ * n, 0.0);
        slot_of_.assign(n, kNone);
        row_of_.assign(capacity_, kNone);
        prev_.assign(capacity_, kNone);
        next_.assign(capacity_, kNone);
    }

    /// Returns row i (values K(x_i, x_j) for all j), filling via `fill(i,
    /// out)` on a miss. `pinned` is a row index that must survive eviction
    /// (kNone when unconstrained).
    template <typename FillFn>
    const double* Get(std::size_t i, std::size_t pinned, FillFn&& fill) {
        std::size_t s = slot_of_[i];
        if (s != kNone) {
            ++hits_;
            MoveToFront(s);
            return &slab_[s * n_];
        }
        ++misses_;
        if (used_ < capacity_) {
            s = used_++;
        } else {
            s = tail_;  // least recently used
            if (row_of_[s] == pinned) s = prev_[s];  // capacity ≥ 2
            Unlink(s);
            slot_of_[row_of_[s]] = kNone;
            ++evictions_;
        }
        row_of_[s] = i;
        slot_of_[i] = s;
        PushFront(s);
        double* row = &slab_[s * n_];
        fill(i, row);
        return row;
    }

    bool enabled() const { return capacity_ > 0; }
    std::size_t resident_rows() const { return used_; }
    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }
    std::size_t evictions() const { return evictions_; }

  private:
    void Unlink(std::size_t s) {
        if (prev_[s] != kNone) next_[prev_[s]] = next_[s];
        else head_ = next_[s];
        if (next_[s] != kNone) prev_[next_[s]] = prev_[s];
        else tail_ = prev_[s];
    }
    void PushFront(std::size_t s) {
        prev_[s] = kNone;
        next_[s] = head_;
        if (head_ != kNone) prev_[head_] = s;
        head_ = s;
        if (tail_ == kNone) tail_ = s;
    }
    void MoveToFront(std::size_t s) {
        if (s == head_) return;
        Unlink(s);
        PushFront(s);
    }

    std::size_t n_ = 0;
    std::size_t capacity_ = 0;
    std::size_t used_ = 0;
    std::vector<double> slab_;
    std::vector<std::size_t> slot_of_;  // row index → slot (kNone = absent)
    std::vector<std::size_t> row_of_;   // slot → row index
    std::vector<std::size_t> prev_;
    std::vector<std::size_t> next_;
    std::size_t head_ = kNone;
    std::size_t tail_ = kNone;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
};

// Training workspace: data views, alphas, error cache and (optional) Gram.
class SmoSolver {
  public:
    SmoSolver(const FeatureMatrix& x, const std::vector<int>& y,
              const SmoConfig& config)
        : x_(x),
          y_(y),
          config_(config),
          n_(x.rows()),
          alpha_(x.rows(), 0.0),
          error_(x.rows(), 0.0),
          rng_(config.seed) {
        use_gram_ = n_ <= config_.gram_limit;
        if (use_gram_) {
            gram_.resize(n_ * n_);
            for (std::size_t i = 0; i < n_; ++i) {
                for (std::size_t j = i; j < n_; ++j) {
                    const double k = KernelEval(config_.kernel, x_.Row(i), x_.Row(j));
                    gram_[i * n_ + j] = k;
                    gram_[j * n_ + i] = k;
                }
            }
            kernel_evals_ += n_ * (n_ + 1) / 2;  // the Gram build itself
        }
        use_cache_ = !use_gram_ && config_.cache_bytes > 0;
        if (use_cache_) cache_.Init(n_, config_.cache_bytes);
        if (config_.kernel.type == KernelType::kLinear) {
            w_.assign(x_.cols(), 0.0);
        }
        active_.assign(n_, 1);
        // f(x_i) = 0 initially, so E_i = −y_i.
        for (std::size_t i = 0; i < n_; ++i) error_[i] = -static_cast<double>(y_[i]);
    }

    Result<SmoModel> Solve() {
        // Platt's outer loop: alternate full sweeps and non-bound sweeps until
        // a full sweep makes no progress.
        BudgetGuard guard(config_.budget);
        bool examine_all = true;
        bool budget_hit = false;
        std::size_t changed = 0;
        std::size_t passes = 0;
        while ((changed > 0 || examine_all) && passes < config_.max_passes &&
               steps_ < config_.max_steps) {
            changed = 0;
            // A full sweep must see exact errors: reactivate every shrunk
            // point, reconstructing its error from the current iterate.
            if (examine_all && config_.shrinking) Unshrink();
            for (std::size_t i = 0; i < n_; ++i) {
                if (guard.Check(0) != BudgetBreach::kNone) {
                    budget_hit = true;
                    break;
                }
                if (!examine_all && !IsNonBound(i)) continue;
                changed += ExamineExample(i);
                if (steps_ >= config_.max_steps) break;
            }
            if (budget_hit) break;
            if (examine_all) {
                examine_all = false;
            } else if (changed == 0) {
                examine_all = true;
            } else if (config_.shrinking) {
                // Between non-full sweeps, drop bound points that satisfy
                // KKT beyond tolerance from the O(n) refresh and the
                // candidate scans.
                Shrink();
            }
            ++passes;
        }
        FlushMetrics(passes);
        // Convergence means a full sweep found no KKT violator — not an exit
        // forced by the pair-update or execution budget.
        const bool exhausted = budget_hit || passes >= config_.max_passes ||
                               steps_ >= config_.max_steps;
        auto model = BuildModel();
        if (model.ok()) {
            model.value().converged = !exhausted && changed == 0 && !examine_all;
            model.value().breach = guard.breach();
        }
        return model;
    }

  private:
    double Kern(std::size_t i, std::size_t j) const {
        if (use_gram_) {
            ++cache_hits_;
            return gram_[i * n_ + j];
        }
        ++kernel_evals_;
        return KernelEval(config_.kernel, x_.Row(i), x_.Row(j));
    }

    // One registry flush per Solve(); the per-call tallies above keep the
    // inner loops free of atomics.
    void FlushMetrics(std::size_t passes) const {
        auto& registry = obs::Registry::Get();
        static auto& passes_c = registry.GetCounter("dfp.ml.smo.passes");
        static auto& steps_c = registry.GetCounter("dfp.ml.smo.take_steps");
        static auto& examine_c = registry.GetCounter("dfp.ml.smo.examine_calls");
        static auto& kern_c = registry.GetCounter("dfp.ml.smo.kernel_evals");
        static auto& hits_c = registry.GetCounter("dfp.ml.smo.cache_hits");
        passes_c.Inc(passes);
        steps_c.Inc(steps_);
        examine_c.Inc(examine_calls_);
        kern_c.Inc(kernel_evals_);
        hits_c.Inc(cache_hits_);
        registry.GetCounter("dfp.ml.smo.solves").Inc();
        if (use_cache_) {
            static auto& row_hits = registry.GetCounter("dfp.svm.cache.hits");
            static auto& row_misses = registry.GetCounter("dfp.svm.cache.misses");
            static auto& row_evict = registry.GetCounter("dfp.svm.cache.evictions");
            row_hits.Inc(cache_.hits());
            row_misses.Inc(cache_.misses());
            row_evict.Inc(cache_.evictions());
            registry.GetGauge("dfp.svm.cache.rows")
                .Set(static_cast<double>(cache_.resident_rows()));
        }
        if (config_.shrinking) {
            registry.GetCounter("dfp.ml.smo.shrunk_points").Inc(shrunk_total_);
        }
    }

    bool IsNonBound(std::size_t i) const {
        return alpha_[i] > 0.0 && alpha_[i] < config_.c;
    }

    /// Kernel row i via the LRU cache (call only when use_cache_).
    const double* CachedRow(std::size_t i, std::size_t pinned) {
        return cache_.Get(i, pinned, [this](std::size_t r, double* out) {
            for (std::size_t j = 0; j < n_; ++j) {
                out[j] = KernelEval(config_.kernel, x_.Row(r), x_.Row(j));
            }
            kernel_evals_ += n_;
        });
    }

    /// Deactivates strictly-KKT-satisfied bound points. Their error entries
    /// go stale until Unshrink().
    void Shrink() {
        for (std::size_t i = 0; i < n_; ++i) {
            if (!active_[i]) continue;
            const double r = error_[i] * static_cast<double>(y_[i]);
            const bool at_lower = alpha_[i] <= 0.0;
            const bool at_upper = alpha_[i] >= config_.c;
            if ((at_lower && r > config_.tol) || (at_upper && r < -config_.tol)) {
                active_[i] = 0;
                ++shrunk_total_;
            }
        }
    }

    /// Reactivates all points, rebuilding the stale errors exactly:
    /// error_[i] = f(x_i) − y_i under the current (α, b) iterate.
    void Unshrink() {
        for (std::size_t i = 0; i < n_; ++i) {
            if (active_[i]) continue;
            error_[i] = Fx(i, nullptr) - static_cast<double>(y_[i]);
            active_[i] = 1;
        }
    }

    // f(x_i) − y_i; error_ holds it for all points (full cache).
    double Error(std::size_t i) const { return error_[i]; }

    std::size_t ExamineExample(std::size_t i2) {
        ++examine_calls_;
        const double y2 = y_[i2];
        const double e2 = Error(i2);
        const double r2 = e2 * y2;
        const bool kkt_violated = (r2 < -config_.tol && alpha_[i2] < config_.c) ||
                                  (r2 > config_.tol && alpha_[i2] > 0.0);
        if (!kkt_violated) return 0;

        // Second-choice heuristic: maximize |E1 − E2| over non-bound points.
        std::size_t best = n_;
        double best_gap = -1.0;
        for (std::size_t i = 0; i < n_; ++i) {
            if (!IsNonBound(i)) continue;
            const double gap = std::fabs(Error(i) - e2);
            if (gap > best_gap) {
                best_gap = gap;
                best = i;
            }
        }
        if (best < n_ && TakeStep(best, i2)) return 1;

        // Fall back: non-bound points from a random start, then all points.
        const std::size_t start =
            static_cast<std::size_t>(rng_.UniformInt(std::uint64_t{n_}));
        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t i = (start + k) % n_;
            if (IsNonBound(i) && TakeStep(i, i2)) return 1;
        }
        // Shrunk points are skipped: their cached errors are stale (no-op
        // when shrinking is off — every point stays active).
        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t i = (start + k) % n_;
            if (active_[i] && TakeStep(i, i2)) return 1;
        }
        return 0;
    }

    bool TakeStep(std::size_t i1, std::size_t i2) {
        if (i1 == i2) return false;
        const double a1_old = alpha_[i1];
        const double a2_old = alpha_[i2];
        const double y1 = y_[i1];
        const double y2 = y_[i2];
        const double e1 = Error(i1);
        const double e2 = Error(i2);
        const double s = y1 * y2;

        double lo;
        double hi;
        if (s < 0.0) {
            lo = std::max(0.0, a2_old - a1_old);
            hi = std::min(config_.c, config_.c + a2_old - a1_old);
        } else {
            lo = std::max(0.0, a1_old + a2_old - config_.c);
            hi = std::min(config_.c, a1_old + a2_old);
        }
        if (lo >= hi) return false;

        // Row-cache path: fetch both working rows once; k11/k12/k22, the
        // O(n) error refresh and the Fx re-anchors below all read from them.
        const double* row1 = nullptr;
        const double* row2 = nullptr;
        if (use_cache_) {
            row1 = CachedRow(i1, i2);
            row2 = CachedRow(i2, i1);
        }
        const double k11 = row1 != nullptr ? row1[i1] : Kern(i1, i1);
        const double k12 = row1 != nullptr ? row1[i2] : Kern(i1, i2);
        const double k22 = row2 != nullptr ? row2[i2] : Kern(i2, i2);
        const double eta = k11 + k22 - 2.0 * k12;

        double a2_new;
        if (eta > 0.0) {
            a2_new = a2_old + y2 * (e1 - e2) / eta;
            a2_new = std::clamp(a2_new, lo, hi);
        } else {
            // Degenerate curvature: evaluate the objective at both clip ends.
            const double f1 = y1 * (e1 + bias_) - a1_old * k11 - s * a2_old * k12;
            const double f2 = y2 * (e2 + bias_) - s * a1_old * k12 - a2_old * k22;
            const double l1 = a1_old + s * (a2_old - lo);
            const double h1 = a1_old + s * (a2_old - hi);
            const double obj_lo = l1 * f1 + lo * f2 + 0.5 * l1 * l1 * k11 +
                                  0.5 * lo * lo * k22 + s * lo * l1 * k12;
            const double obj_hi = h1 * f1 + hi * f2 + 0.5 * h1 * h1 * k11 +
                                  0.5 * hi * hi * k22 + s * hi * h1 * k12;
            if (obj_lo < obj_hi - config_.eps) {
                a2_new = lo;
            } else if (obj_lo > obj_hi + config_.eps) {
                a2_new = hi;
            } else {
                return false;
            }
        }
        if (std::fabs(a2_new - a2_old) <
            config_.eps * (a2_new + a2_old + config_.eps)) {
            return false;
        }
        const double a1_new = a1_old + s * (a2_old - a2_new);

        // Bias update (Platt eq. 20-21).
        const double b1 = e1 + y1 * (a1_new - a1_old) * k11 +
                          y2 * (a2_new - a2_old) * k12 + bias_;
        const double b2 = e2 + y1 * (a1_new - a1_old) * k12 +
                          y2 * (a2_new - a2_old) * k22 + bias_;
        double b_new;
        if (a1_new > 0.0 && a1_new < config_.c) {
            b_new = b1;
        } else if (a2_new > 0.0 && a2_new < config_.c) {
            b_new = b2;
        } else {
            b_new = 0.5 * (b1 + b2);
        }
        const double delta_b = b_new - bias_;
        bias_ = b_new;
        alpha_[i1] = a1_new;
        alpha_[i2] = a2_new;

        // Incremental error-cache refresh (shrunk points skipped — their
        // errors are reconstructed exactly at the next full sweep).
        const double d1 = y1 * (a1_new - a1_old);
        const double d2 = y2 * (a2_new - a2_old);
        if (row1 != nullptr) {
            for (std::size_t i = 0; i < n_; ++i) {
                if (!active_[i]) continue;
                error_[i] += d1 * row1[i] + d2 * row2[i] - delta_b;
            }
        } else {
            for (std::size_t i = 0; i < n_; ++i) {
                if (!active_[i]) continue;
                error_[i] += d1 * Kern(i1, i) + d2 * Kern(i2, i) - delta_b;
            }
        }
        // Update the primal weights BEFORE re-anchoring the two changed
        // errors: Fx() reads w_ on the linear path.
        if (!w_.empty()) {
            const auto r1 = x_.Row(i1);
            const auto r2 = x_.Row(i2);
            for (std::size_t d = 0; d < w_.size(); ++d) {
                w_[d] += d1 * r1[d] + d2 * r2[d];
            }
        }
        error_[i1] = Fx(i1, row1) - y1;  // recompute exactly for the changed points
        error_[i2] = Fx(i2, row2) - y2;
        ++steps_;
        return true;
    }

    // f(x_i) from scratch (re-anchoring the two changed points, and error
    // reconstruction on Unshrink). `row` is the cached kernel row for i when
    // available — K is symmetric, so row[j] = K(x_j, x_i).
    double Fx(std::size_t i, const double* row) const {
        double f = -bias_;
        if (!w_.empty()) {
            f += Dot(w_, x_.Row(i));
        } else if (row != nullptr) {
            for (std::size_t j = 0; j < n_; ++j) {
                if (alpha_[j] > 0.0) f += alpha_[j] * y_[j] * row[j];
            }
        } else {
            for (std::size_t j = 0; j < n_; ++j) {
                if (alpha_[j] > 0.0) f += alpha_[j] * y_[j] * Kern(j, i);
            }
        }
        return f;
    }

    Result<SmoModel> BuildModel() {
        SmoModel model;
        model.kernel = config_.kernel;
        model.bias = -bias_;  // Platt uses f = Σ… − b; expose f = Σ… + bias
        model.alpha = alpha_;
        model.iterations = steps_;
        if (!w_.empty()) {
            model.w = w_;
        }
        for (std::size_t i = 0; i < n_; ++i) {
            if (alpha_[i] <= 0.0) continue;
            model.sv_coef.push_back(alpha_[i] * y_[i]);
            const auto row = x_.Row(i);
            model.sv.emplace_back(row.begin(), row.end());
        }
        return model;
    }

    const FeatureMatrix& x_;
    const std::vector<int>& y_;
    const SmoConfig& config_;
    std::size_t n_;
    std::vector<double> alpha_;
    std::vector<double> error_;
    std::vector<double> gram_;
    std::vector<double> w_;
    KernelRowCache cache_;
    std::vector<char> active_;  // 0 = shrunk (bound + KKT-satisfied)
    double bias_ = 0.0;  // Platt's threshold b (f = Σ αyK − b)
    bool use_gram_ = false;
    bool use_cache_ = false;
    std::size_t shrunk_total_ = 0;
    std::size_t steps_ = 0;
    std::size_t examine_calls_ = 0;
    // mutable: tallied inside const Kern() on both lookup paths.
    mutable std::size_t kernel_evals_ = 0;
    mutable std::size_t cache_hits_ = 0;
    Rng rng_;
};

}  // namespace

double SmoModel::Decision(std::span<const double> x) const {
    if (!w.empty()) return Dot(w, x) + bias;
    double f = bias;
    for (std::size_t i = 0; i < sv.size(); ++i) {
        f += sv_coef[i] * KernelEval(kernel, sv[i], x);
    }
    return f;
}

Result<SmoModel> TrainSmo(const FeatureMatrix& x, const std::vector<int>& y,
                          const SmoConfig& config) {
    if (x.rows() == 0) return Status::InvalidArgument("empty SVM training set");
    if (x.rows() != y.size()) {
        return Status::InvalidArgument("SVM label/row count mismatch");
    }
    for (int label : y) {
        if (label != 1 && label != -1) {
            return Status::InvalidArgument("SVM labels must be in {-1, +1}");
        }
    }
    if (config.c <= 0.0) return Status::InvalidArgument("SVM C must be positive");
    SmoSolver solver(x, y, config);
    return solver.Solve();
}

double MaxKktViolation(const SmoModel& model, const FeatureMatrix& x,
                       const std::vector<int>& y, double c) {
    double worst = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const double margin = static_cast<double>(y[i]) * model.Decision(x.Row(i));
        const double a = model.alpha[i];
        double violation = 0.0;
        if (a <= 1e-12) {
            violation = std::max(0.0, 1.0 - margin);  // should have y·f ≥ 1
        } else if (a >= c - 1e-12) {
            violation = std::max(0.0, margin - 1.0);  // should have y·f ≤ 1
        } else {
            violation = std::fabs(margin - 1.0);  // should sit on the margin
        }
        worst = std::max(worst, violation);
    }
    return worst;
}

}  // namespace dfp
