#include "ml/svm/svm.hpp"

#include <algorithm>
#include <ostream>

#include "common/parallel.hpp"
#include "common/serialize.hpp"

#include "common/string_util.hpp"
#include "ml/eval/cross_validation.hpp"
#include "ml/svm/pegasos.hpp"

namespace dfp {

std::string SvmClassifier::Name() const {
    return StrFormat("svm-%s(C=%g)", KernelName(config_.kernel).c_str(), config_.c);
}

Status SvmClassifier::Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                            std::size_t num_classes) {
    if (num_classes < 2) {
        return Status::InvalidArgument("SVM needs at least two classes");
    }
    machines_.clear();
    num_classes_ = num_classes;

    std::vector<std::pair<ClassLabel, ClassLabel>> pairs;
    for (ClassLabel a = 0; a < num_classes; ++a) {
        for (ClassLabel b = a + 1; b < num_classes; ++b) pairs.emplace_back(a, b);
    }

    // One deadline shared by every pairwise solve: each pair gets whatever
    // wall-clock remains, instead of a fresh full window.
    DeadlineTimer timer(config_.budget.time_budget_ms);

    // One slot per class pair; slots are merged into machines_ in pair order
    // afterwards, so the trained model is identical for every thread count
    // (each binary solve is independent and deterministic given its inputs).
    struct PairSlot {
        bool present = false;
        PairModel pm;
        Status status = Status::Ok();
    };
    std::vector<PairSlot> slots(pairs.size());

    auto solve_pair = [&](std::size_t idx) {
        const auto [a, b] = pairs[idx];
        PairSlot& slot = slots[idx];
        std::vector<std::size_t> rows;
        std::vector<int> labels;
        for (std::size_t r = 0; r < x.rows(); ++r) {
            if (y[r] == a) {
                rows.push_back(r);
                labels.push_back(+1);
            } else if (y[r] == b) {
                rows.push_back(r);
                labels.push_back(-1);
            }
        }
        if (rows.empty()) return;
        // A pair with only one class present degenerates; vote by majority.
        const bool has_pos = std::count(labels.begin(), labels.end(), 1) > 0;
        const bool has_neg = std::count(labels.begin(), labels.end(), -1) > 0;
        if (!has_pos || !has_neg) {
            slot.present = true;
            slot.pm.positive = a;
            slot.pm.negative = b;
            slot.pm.model.bias = has_pos ? 1.0 : -1.0;  // constant decision
            return;
        }
        const FeatureMatrix sub = x.SelectRows(rows);
        SmoConfig pair_config = config_;
        pair_config.budget.time_budget_ms = timer.remaining_ms();
        // Pair solves can run concurrently; split the kernel-row cache
        // budget so peak memory stays within the configured bound. Cached
        // rows equal direct evaluation bit for bit, so the capacity split
        // does not change the trained model.
        const std::size_t workers = std::max<std::size_t>(
            1, std::min(ResolveNumThreads(config_.num_threads), pairs.size()));
        pair_config.cache_bytes = config_.cache_bytes / workers;
        auto trained = TrainSmo(sub, labels, pair_config);
        if (!trained.ok()) {
            slot.status = trained.status();
            return;
        }
        SmoModel model = std::move(trained).value();
        if (model.breach == BudgetBreach::kCancelled) {
            RecordBreach("ml.svm", model.breach, static_cast<double>(idx));
            slot.status = Status::Cancelled("SVM training cancelled");
            return;
        }
        if (model.breach != BudgetBreach::kNone) {
            // Deadline/memory breach: keep the partial SMO iterate (it is
            // a valid, if suboptimal, decision function).
            RecordBreach("ml.svm", model.breach, static_cast<double>(idx));
        } else if (!model.converged && config_.fallback_to_pegasos) {
            // Pair-update budget (max_steps/max_passes) exhausted without
            // KKT cleanliness: retrain the pair with the primal solver.
            GuardLog::Get().Record("ml.svm", "smo_nonconverged",
                                   static_cast<double>(model.iterations));
            PegasosConfig fallback;
            fallback.lambda =
                1.0 / (config_.c * static_cast<double>(sub.rows()));
            fallback.budget = config_.budget;
            fallback.budget.time_budget_ms = timer.remaining_ms();
            const BinaryLinearModel linear =
                TrainPegasosBinary(sub, labels, fallback);
            if (linear.breach == BudgetBreach::kCancelled) {
                slot.status = Status::Cancelled("SVM training cancelled");
                return;
            }
            model = SmoModel{};
            model.kernel.type = KernelType::kLinear;
            model.w = linear.w;
            model.bias = linear.bias;
            model.converged = linear.breach == BudgetBreach::kNone;
            GuardLog::Get().Record("ml.svm", "pegasos_fallback",
                                   static_cast<double>(sub.rows()));
        }
        slot.present = true;
        slot.pm.positive = a;
        slot.pm.negative = b;
        slot.pm.model = std::move(model);
    };

    const std::size_t threads =
        std::min(ResolveNumThreads(config_.num_threads), pairs.size());
    if (threads <= 1) {
        // Serial path: stop at the first failing pair, like today.
        for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
            solve_pair(idx);
            if (!slots[idx].status.ok()) return slots[idx].status;
        }
    } else {
        ThreadPool pool(threads);
        TaskGroup group(pool);
        for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
            group.Submit([&, idx] { solve_pair(idx); });
        }
        group.Wait();
        // Deterministic error surfacing: the first failing pair in pair
        // order, matching the serial early-exit.
        for (const PairSlot& slot : slots) {
            if (!slot.status.ok()) return slot.status;
        }
    }

    for (PairSlot& slot : slots) {
        if (slot.present) machines_.push_back(std::move(slot.pm));
    }
    if (machines_.empty()) {
        return Status::FailedPrecondition("no class pair had training data");
    }
    return Status::Ok();
}

ClassLabel SvmClassifier::Predict(std::span<const double> x) const {
    std::vector<double> votes(num_classes_, 0.0);
    std::vector<double> margins(num_classes_, 0.0);
    for (const PairModel& pm : machines_) {
        double f;
        if (pm.model.sv.empty() && pm.model.w.empty()) {
            f = pm.model.bias;  // degenerate constant machine
        } else {
            f = pm.model.Decision(x);
        }
        if (f >= 0.0) {
            votes[pm.positive] += 1.0;
        } else {
            votes[pm.negative] += 1.0;
        }
        margins[pm.positive] += f;
        margins[pm.negative] -= f;
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes_; ++c) {
        if (votes[c] > votes[best] ||
            (votes[c] == votes[best] && margins[c] > margins[best])) {
            best = c;
        }
    }
    return static_cast<ClassLabel>(best);
}

SmoConfig GridSearchSvm(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                        std::size_t num_classes, const SmoConfig& base,
                        const SvmGrid& grid) {
    std::vector<SmoConfig> candidates;
    std::vector<double> gammas = grid.gamma_values;
    if (gammas.empty() || base.kernel.type == KernelType::kLinear) {
        gammas = {base.kernel.gamma};
    }
    for (double c : grid.c_values) {
        for (double gamma : gammas) {
            SmoConfig cfg = base;
            cfg.c = c;
            cfg.kernel.gamma = gamma;
            candidates.push_back(cfg);
        }
    }
    SmoConfig best = candidates.front();
    double best_acc = -1.0;
    const std::size_t threads =
        std::min(ResolveNumThreads(grid.num_threads), candidates.size());

    if (threads <= 1) {
        // Every check covers a whole k-fold CV run, so read the clock each
        // time.
        BudgetGuard guard(grid.budget, std::numeric_limits<std::size_t>::max(),
                          /*clock_stride=*/1);
        std::size_t evaluated = 0;
        for (SmoConfig& cfg : candidates) {
            if (guard.Check(0) != BudgetBreach::kNone) {
                RecordBreach("ml.svm.grid", guard.breach(),
                             static_cast<double>(evaluated));
                break;
            }
            cfg.budget = grid.budget;
            const CvResult cv = CrossValidate(
                x, y, num_classes,
                [&cfg]() { return std::make_unique<SvmClassifier>(cfg); },
                grid.folds, grid.seed);
            ++evaluated;
            if (cv.mean_accuracy > best_acc) {
                best_acc = cv.mean_accuracy;
                best = cfg;
            }
        }
        return best;
    }

    // Parallel grid: every candidate's CV runs as an independent task (each
    // checks the shared budget before starting; tasks that never ran stay at
    // the -1 sentinel and cannot win). The winner is the first candidate, in
    // grid order, with the maximal accuracy — the serial scan's choice.
    std::vector<double> accuracies(candidates.size(), -1.0);
    std::atomic<std::size_t> evaluated{0};
    std::atomic<int> grid_breach{static_cast<int>(BudgetBreach::kNone)};
    DeadlineTimer timer(grid.budget.time_budget_ms);
    {
        ThreadPool pool(threads);
        TaskGroup group(pool);
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            candidates[i].budget = grid.budget;
            group.Submit([&, i] {
                BudgetGuard guard(TaskBudget(grid.budget, timer),
                                  std::numeric_limits<std::size_t>::max(),
                                  /*clock_stride=*/1);
                if (guard.Check(0) != BudgetBreach::kNone) {
                    grid_breach.store(static_cast<int>(guard.breach()),
                                      std::memory_order_relaxed);
                    return;
                }
                const SmoConfig& cfg = candidates[i];
                const CvResult cv = CrossValidate(
                    x, y, num_classes,
                    [&cfg]() { return std::make_unique<SvmClassifier>(cfg); },
                    grid.folds, grid.seed);
                accuracies[i] = cv.mean_accuracy;
                evaluated.fetch_add(1, std::memory_order_relaxed);
            });
        }
        group.Wait();
    }
    const auto breach =
        static_cast<BudgetBreach>(grid_breach.load(std::memory_order_relaxed));
    if (breach != BudgetBreach::kNone) {
        RecordBreach("ml.svm.grid", breach,
                     static_cast<double>(evaluated.load(std::memory_order_relaxed)));
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (accuracies[i] > best_acc) {
            best_acc = accuracies[i];
            best = candidates[i];
        }
    }
    return best;
}


Status SvmClassifier::SaveModel(std::ostream& out) const {
    out << "svm-model " << static_cast<int>(config_.kernel.type) << ' ';
    WriteDouble(out, config_.kernel.gamma);
    out << ' ';
    WriteDouble(out, config_.kernel.coef0);
    out << ' ' << config_.kernel.degree << ' ';
    WriteDouble(out, config_.c);
    out << ' ' << num_classes_ << ' ' << machines_.size() << '\n';
    for (const PairModel& pm : machines_) {
        out << pm.positive << ' ' << pm.negative << ' ';
        WriteDouble(out, pm.model.bias);
        out << ' ' << pm.model.w.size() << ' ';
        for (double w : pm.model.w) {
            WriteDouble(out, w);
            out << ' ';
        }
        const std::size_t dim = pm.model.sv.empty() ? 0 : pm.model.sv[0].size();
        out << pm.model.sv.size() << ' ' << dim << '\n';
        for (std::size_t i = 0; i < pm.model.sv.size(); ++i) {
            WriteDouble(out, pm.model.sv_coef[i]);
            out << ' ';
            for (double v : pm.model.sv[i]) {
                WriteDouble(out, v);
                out << ' ';
            }
            out << '\n';
        }
    }
    if (!out) return Status::Internal("SVM model write failed");
    return Status::Ok();
}

Status SvmClassifier::LoadModel(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect("svm-model"));
    std::int32_t kernel_type = 0;
    DFP_RETURN_NOT_OK(reader.Read(&kernel_type));
    if (kernel_type < 0 || kernel_type > 2) {
        return Status::ParseError("unknown kernel type in SVM model");
    }
    config_.kernel.type = static_cast<KernelType>(kernel_type);
    DFP_RETURN_NOT_OK(reader.Read(&config_.kernel.gamma));
    DFP_RETURN_NOT_OK(reader.Read(&config_.kernel.coef0));
    DFP_RETURN_NOT_OK(reader.Read(&config_.kernel.degree));
    DFP_RETURN_NOT_OK(reader.Read(&config_.c));
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_classes_));
    std::size_t machine_count = 0;
    DFP_RETURN_NOT_OK(reader.ReadCount(&machine_count));
    machines_.assign(machine_count, PairModel{});
    for (PairModel& pm : machines_) {
        DFP_RETURN_NOT_OK(reader.Read(&pm.positive));
        DFP_RETURN_NOT_OK(reader.Read(&pm.negative));
        DFP_RETURN_NOT_OK(reader.Read(&pm.model.bias));
        std::size_t w_size = 0;
        DFP_RETURN_NOT_OK(reader.ReadCount(&w_size));
        DFP_RETURN_NOT_OK(reader.ReadDoubles(w_size, &pm.model.w));
        std::size_t sv_count = 0;
        std::size_t dim = 0;
        DFP_RETURN_NOT_OK(reader.ReadCount(&sv_count));
        DFP_RETURN_NOT_OK(reader.ReadCount(&dim));
        if (sv_count != 0 && dim > kMaxModelElements / sv_count) {
            return Status::InvalidArgument(
                "SVM support-vector matrix exceeds the sanity cap");
        }
        pm.model.kernel = config_.kernel;
        pm.model.sv_coef.resize(sv_count);
        pm.model.sv.assign(sv_count, std::vector<double>(dim, 0.0));
        for (std::size_t i = 0; i < sv_count; ++i) {
            DFP_RETURN_NOT_OK(reader.Read(&pm.model.sv_coef[i]));
            DFP_RETURN_NOT_OK(reader.ReadDoubles(dim, &pm.model.sv[i]));
        }
    }
    return Status::Ok();
}

}  // namespace dfp
