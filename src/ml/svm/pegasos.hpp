// Pegasos: primal sub-gradient linear SVM (Shalev-Shwartz et al., ICML'07).
//
// The SMO solver is exact but quadratic-ish in n; the scalability experiments
// (Tables 3–5, up to 20 000 rows × 26 classes) need a linear-time linear SVM,
// which is what LIBLINEAR would provide in the paper's setting. Pegasos makes
// one O(d) update per sampled example and converges in a few epochs on the
// sparse binary feature spaces this framework produces. Multiclass is
// one-vs-rest with argmax over decision values.
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace dfp {

struct PegasosConfig {
    double lambda = 1e-4;    ///< L2 regularization (≈ 1/(C·n))
    std::size_t epochs = 30;  ///< passes over the data
    std::uint64_t seed = 19;
    /// Deadline / cancellation limits, checked once per epoch. A deadline
    /// stops training early with the current (still valid) iterate; a fired
    /// CancelToken makes Train return Cancelled.
    ExecutionBudget budget;
};

/// A binary linear decision function f(x) = w·x + bias (classify by sign).
struct BinaryLinearModel {
    std::vector<double> w;
    double bias = 0.0;
    /// Breach that stopped SGD early (kNone = ran all epochs).
    BudgetBreach breach = BudgetBreach::kNone;
};

/// Trains a binary (±1 labels) linear SVM with Pegasos SGD — the fallback
/// solver used when SMO fails to converge on a pairwise subproblem.
BinaryLinearModel TrainPegasosBinary(const FeatureMatrix& x,
                                     const std::vector<int>& y,
                                     const PegasosConfig& config);

/// One-vs-rest linear SVM trained with Pegasos SGD.
class PegasosClassifier : public Classifier {
  public:
    explicit PegasosClassifier(PegasosConfig config = {}) : config_(config) {}

    std::string Name() const override { return "svm-pegasos"; }
    std::string TypeId() const override { return "pegasos"; }
    Status Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                 std::size_t num_classes) override;
    ClassLabel Predict(std::span<const double> x) const override;
    Status SaveModel(std::ostream& out) const override;
    Status LoadModel(std::istream& in) override;
    void SetExecutionBudget(const ExecutionBudget& budget) override {
        config_.budget = budget;
    }

    /// Decision value of the one-vs-rest machine for class c.
    double Decision(std::span<const double> x, ClassLabel c) const;

  private:
    PegasosConfig config_;
    std::size_t num_classes_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> weights_;  ///< row-major [class][feature]
    std::vector<double> bias_;
};

}  // namespace dfp
