#include "ml/svm/pegasos.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/serialize.hpp"

#include "common/rng.hpp"

namespace dfp {

Status PegasosClassifier::Train(const FeatureMatrix& x,
                                const std::vector<ClassLabel>& y,
                                std::size_t num_classes) {
    if (x.rows() == 0) return Status::InvalidArgument("empty training set");
    if (x.rows() != y.size()) {
        return Status::InvalidArgument("pegasos label/row count mismatch");
    }
    num_classes_ = num_classes;
    cols_ = x.cols();
    weights_.assign(num_classes * cols_, 0.0);
    bias_.assign(num_classes, 0.0);
    Rng rng(config_.seed);

    const std::size_t n = x.rows();
    for (std::size_t c = 0; c < num_classes; ++c) {
        double* w = &weights_[c * cols_];
        double b = 0.0;      // bias treated as a constant-1 feature
        double scale = 1.0;  // lazy w-shrinking factor
        // Start t at 2 so the first step size is 1/(2λ), not 1/λ (which would
        // zero `scale` and make the first example dominate).
        std::size_t t = 2;
        for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
            for (std::size_t step = 0; step < n; ++step, ++t) {
                const std::size_t i =
                    static_cast<std::size_t>(rng.UniformInt(std::uint64_t{n}));
                const double target = (y[i] == c) ? 1.0 : -1.0;
                const double eta = 1.0 / (config_.lambda * static_cast<double>(t));
                const auto row = x.Row(i);
                double f = b;
                for (std::size_t d = 0; d < cols_; ++d) f += w[d] * row[d];
                f *= scale;
                // Shrink: w ← (1 − ηλ)w, folded into the lazy scale.
                scale *= (1.0 - eta * config_.lambda);
                if (scale < 1e-9) {
                    for (std::size_t d = 0; d < cols_; ++d) w[d] *= scale;
                    b *= scale;
                    scale = 1.0;
                }
                if (target * f < 1.0) {
                    const double g = eta * target / scale;
                    for (std::size_t d = 0; d < cols_; ++d) w[d] += g * row[d];
                    b += g;
                }
            }
        }
        for (std::size_t d = 0; d < cols_; ++d) w[d] *= scale;
        bias_[c] = b * scale;
    }
    return Status::Ok();
}

double PegasosClassifier::Decision(std::span<const double> x, ClassLabel c) const {
    const double* w = &weights_[c * cols_];
    double f = bias_[c];
    for (std::size_t d = 0; d < cols_; ++d) f += w[d] * x[d];
    return f;
}

ClassLabel PegasosClassifier::Predict(std::span<const double> x) const {
    ClassLabel best = 0;
    double best_f = -1e300;
    for (std::size_t c = 0; c < num_classes_; ++c) {
        const double f = Decision(x, static_cast<ClassLabel>(c));
        if (f > best_f) {
            best_f = f;
            best = static_cast<ClassLabel>(c);
        }
    }
    return best;
}


Status PegasosClassifier::SaveModel(std::ostream& out) const {
    out << "pegasos-model " << num_classes_ << ' ' << cols_ << '\n';
    for (double w : weights_) {
        WriteDouble(out, w);
        out << ' ';
    }
    out << '\n';
    for (double b : bias_) {
        WriteDouble(out, b);
        out << ' ';
    }
    out << '\n';
    if (!out) return Status::Internal("pegasos model write failed");
    return Status::Ok();
}

Status PegasosClassifier::LoadModel(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect("pegasos-model"));
    DFP_RETURN_NOT_OK(reader.Read(&num_classes_));
    DFP_RETURN_NOT_OK(reader.Read(&cols_));
    DFP_RETURN_NOT_OK(reader.ReadDoubles(num_classes_ * cols_, &weights_));
    DFP_RETURN_NOT_OK(reader.ReadDoubles(num_classes_, &bias_));
    return Status::Ok();
}

}  // namespace dfp
