#include "ml/svm/pegasos.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/serialize.hpp"

#include "common/rng.hpp"

namespace dfp {

namespace {

// Pegasos SGD core shared by the one-vs-rest classifier and the binary
// fallback solver. `target_of(i)` returns the ±1 label of row i; `rng` is
// shared by callers training several machines so the sampling stream stays
// reproducible. The budget is checked once per epoch: fine-grained enough
// for deadlines (epochs are O(n·d)) without touching the inner loop.
template <typename TargetFn>
BinaryLinearModel PegasosSgd(const FeatureMatrix& x, TargetFn target_of,
                             const PegasosConfig& config, Rng& rng) {
    const std::size_t n = x.rows();
    const std::size_t cols = x.cols();
    BinaryLinearModel model;
    model.w.assign(cols, 0.0);
    double* w = model.w.data();
    double b = 0.0;      // bias treated as a constant-1 feature
    double scale = 1.0;  // lazy w-shrinking factor
    BudgetGuard guard(config.budget, std::numeric_limits<std::size_t>::max(),
                      /*clock_stride=*/1);
    // Start t at 2 so the first step size is 1/(2λ), not 1/λ (which would
    // zero `scale` and make the first example dominate).
    std::size_t t = 2;
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        if (guard.Check(0) != BudgetBreach::kNone) {
            model.breach = guard.breach();
            break;
        }
        for (std::size_t step = 0; step < n; ++step, ++t) {
            const std::size_t i =
                static_cast<std::size_t>(rng.UniformInt(std::uint64_t{n}));
            const double target = target_of(i);
            const double eta = 1.0 / (config.lambda * static_cast<double>(t));
            const auto row = x.Row(i);
            double f = b;
            for (std::size_t d = 0; d < cols; ++d) f += w[d] * row[d];
            f *= scale;
            // Shrink: w ← (1 − ηλ)w, folded into the lazy scale.
            scale *= (1.0 - eta * config.lambda);
            if (scale < 1e-9) {
                for (std::size_t d = 0; d < cols; ++d) w[d] *= scale;
                b *= scale;
                scale = 1.0;
            }
            if (target * f < 1.0) {
                const double g = eta * target / scale;
                for (std::size_t d = 0; d < cols; ++d) w[d] += g * row[d];
                b += g;
            }
        }
    }
    for (std::size_t d = 0; d < cols; ++d) w[d] *= scale;
    model.bias = b * scale;
    return model;
}

}  // namespace

BinaryLinearModel TrainPegasosBinary(const FeatureMatrix& x,
                                     const std::vector<int>& y,
                                     const PegasosConfig& config) {
    Rng rng(config.seed);
    BinaryLinearModel model = PegasosSgd(
        x, [&y](std::size_t i) { return static_cast<double>(y[i]); }, config, rng);
    if (model.breach != BudgetBreach::kNone) {
        RecordBreach("ml.pegasos", model.breach, 0.0);
    }
    return model;
}

Status PegasosClassifier::Train(const FeatureMatrix& x,
                                const std::vector<ClassLabel>& y,
                                std::size_t num_classes) {
    if (x.rows() == 0) return Status::InvalidArgument("empty training set");
    if (x.rows() != y.size()) {
        return Status::InvalidArgument("pegasos label/row count mismatch");
    }
    num_classes_ = num_classes;
    cols_ = x.cols();
    weights_.assign(num_classes * cols_, 0.0);
    bias_.assign(num_classes, 0.0);
    Rng rng(config_.seed);

    for (std::size_t c = 0; c < num_classes; ++c) {
        const BinaryLinearModel machine = PegasosSgd(
            x, [&y, c](std::size_t i) { return (y[i] == c) ? 1.0 : -1.0; },
            config_, rng);
        if (machine.breach == BudgetBreach::kCancelled) {
            RecordBreach("ml.pegasos", machine.breach, static_cast<double>(c));
            return Status::Cancelled("pegasos training cancelled");
        }
        if (machine.breach != BudgetBreach::kNone) {
            // Deadline: keep the truncated (still valid) iterate and push on —
            // later classes get their own epoch-0 exit immediately.
            RecordBreach("ml.pegasos", machine.breach, static_cast<double>(c));
        }
        std::copy(machine.w.begin(), machine.w.end(), &weights_[c * cols_]);
        bias_[c] = machine.bias;
    }
    return Status::Ok();
}

double PegasosClassifier::Decision(std::span<const double> x, ClassLabel c) const {
    const double* w = &weights_[c * cols_];
    double f = bias_[c];
    for (std::size_t d = 0; d < cols_; ++d) f += w[d] * x[d];
    return f;
}

ClassLabel PegasosClassifier::Predict(std::span<const double> x) const {
    ClassLabel best = 0;
    double best_f = -1e300;
    for (std::size_t c = 0; c < num_classes_; ++c) {
        const double f = Decision(x, static_cast<ClassLabel>(c));
        if (f > best_f) {
            best_f = f;
            best = static_cast<ClassLabel>(c);
        }
    }
    return best;
}


Status PegasosClassifier::SaveModel(std::ostream& out) const {
    out << "pegasos-model " << num_classes_ << ' ' << cols_ << '\n';
    for (double w : weights_) {
        WriteDouble(out, w);
        out << ' ';
    }
    out << '\n';
    for (double b : bias_) {
        WriteDouble(out, b);
        out << ' ';
    }
    out << '\n';
    if (!out) return Status::Internal("pegasos model write failed");
    return Status::Ok();
}

Status PegasosClassifier::LoadModel(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect("pegasos-model"));
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_classes_));
    DFP_RETURN_NOT_OK(reader.ReadCount(&cols_));
    if (num_classes_ != 0 && cols_ > kMaxModelElements / num_classes_) {
        return Status::InvalidArgument(
            "pegasos weight matrix exceeds the sanity cap");
    }
    DFP_RETURN_NOT_OK(reader.ReadDoubles(num_classes_ * cols_, &weights_));
    DFP_RETURN_NOT_OK(reader.ReadDoubles(num_classes_, &bias_));
    return Status::Ok();
}

}  // namespace dfp
