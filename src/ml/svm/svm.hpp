// Multi-class SVM classifier (one-vs-one with majority voting, LIBSVM-style)
// plus a small cross-validated grid search for C / γ, mirroring the paper's
// "10-fold cross validation on each training set and picked the best model".
#pragma once

#include <vector>

#include "ml/classifier.hpp"
#include "ml/svm/smo.hpp"

namespace dfp {

/// One-vs-one SVM over all class pairs; prediction by pairwise voting with
/// decision-value-sum tie breaking.
class SvmClassifier : public Classifier {
  public:
    explicit SvmClassifier(SmoConfig config = {}) : config_(config) {}

    std::string Name() const override;
    std::string TypeId() const override { return "svm"; }
    Status Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                 std::size_t num_classes) override;
    ClassLabel Predict(std::span<const double> x) const override;
    Status SaveModel(std::ostream& out) const override;
    Status LoadModel(std::istream& in) override;
    void SetExecutionBudget(const ExecutionBudget& budget) override {
        config_.budget = budget;
    }
    void SetNumThreads(std::size_t num_threads) override {
        config_.num_threads = num_threads;
    }

    const SmoConfig& config() const { return config_; }

  private:
    struct PairModel {
        ClassLabel positive;
        ClassLabel negative;
        SmoModel model;
    };

    SmoConfig config_;
    std::size_t num_classes_ = 0;
    std::vector<PairModel> machines_;
};

/// Grid of SMO configs to search; empty gamma grid keeps the kernel's gamma.
struct SvmGrid {
    std::vector<double> c_values = {0.1, 1.0, 10.0};
    std::vector<double> gamma_values;  ///< only meaningful for RBF
    std::size_t folds = 3;
    std::uint64_t seed = 13;
    /// Worker threads for evaluating grid candidates concurrently (each
    /// candidate's k-fold CV is independent; the winner is picked by a
    /// deterministic scan, so the choice is thread-count invariant). Nested
    /// parallelism is the caller's budget to spend: candidates inherit
    /// base.num_threads for their OvO solves. 1 = serial; 0 = hardware.
    std::size_t num_threads = 1;
    /// Limits for the whole search: candidates stop being evaluated once the
    /// deadline passes or the token fires; the best config so far is returned.
    ExecutionBudget budget;
};

/// Picks the config with the best k-fold CV accuracy on (x, y). Under a
/// breached grid budget, returns the best of the candidates evaluated so far
/// (falling back to the first candidate when none completed).
SmoConfig GridSearchSvm(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                        std::size_t num_classes, const SmoConfig& base,
                        const SvmGrid& grid);

}  // namespace dfp
