// Binary soft-margin SVM trained with Platt's SMO (our LIBSVM substitute).
//
// Solves  max_α Σα_i − ½ΣΣ α_iα_j y_iy_j K(x_i,x_j)
//         s.t. 0 ≤ α_i ≤ C, Σ α_i y_i = 0
// with the classic two-variable analytic step, a full error cache, and the
// max-|E1−E2| second-choice heuristic. For the linear kernel the primal
// weight vector is maintained incrementally, making decision evaluation O(d).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "ml/feature_matrix.hpp"
#include "ml/svm/kernel.hpp"

namespace dfp {

struct SmoConfig {
    double c = 1.0;  ///< soft-margin penalty
    KernelParams kernel;
    double tol = 1e-3;       ///< KKT violation tolerance
    double eps = 1e-8;       ///< minimal alpha step
    std::size_t max_passes = 200;  ///< outer passes without progress cap
    std::size_t max_steps = 2'000'000;  ///< total pair-update budget
    /// Precompute the full Gram matrix when n ≤ this (memory: n² doubles).
    std::size_t gram_limit = 3000;
    std::uint64_t seed = 7;  ///< tie-breaking RNG
};

/// Trained binary SVM. Labels are {−1, +1}.
struct SmoModel {
    KernelParams kernel;
    /// Support vectors and their coefficients α_i·y_i.
    std::vector<std::vector<double>> sv;
    std::vector<double> sv_coef;
    double bias = 0.0;
    /// Primal weights (linear kernel only; empty otherwise).
    std::vector<double> w;
    /// Training α per training row (kept for KKT certification in tests).
    std::vector<double> alpha;
    std::size_t iterations = 0;  ///< pair updates performed

    /// Decision value f(x); classify by sign.
    double Decision(std::span<const double> x) const;
};

/// Trains on rows of `x` with labels y_i ∈ {−1, +1}.
Result<SmoModel> TrainSmo(const FeatureMatrix& x, const std::vector<int>& y,
                          const SmoConfig& config);

/// Max KKT-condition violation of the trained model on its training set;
/// used by the tests to certify convergence (should be ≤ config.tol + slack).
double MaxKktViolation(const SmoModel& model, const FeatureMatrix& x,
                       const std::vector<int>& y, double c);

}  // namespace dfp
