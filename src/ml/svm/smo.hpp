// Binary soft-margin SVM trained with Platt's SMO (our LIBSVM substitute).
//
// Solves  max_α Σα_i − ½ΣΣ α_iα_j y_iy_j K(x_i,x_j)
//         s.t. 0 ≤ α_i ≤ C, Σ α_i y_i = 0
// with the classic two-variable analytic step, a full error cache, and the
// max-|E1−E2| second-choice heuristic. For the linear kernel the primal
// weight vector is maintained incrementally, making decision evaluation O(d).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "ml/feature_matrix.hpp"
#include "ml/svm/kernel.hpp"

namespace dfp {

struct SmoConfig {
    double c = 1.0;  ///< soft-margin penalty
    KernelParams kernel;
    double tol = 1e-3;       ///< KKT violation tolerance
    double eps = 1e-8;       ///< minimal alpha step
    std::size_t max_passes = 200;  ///< outer passes without progress cap
    std::size_t max_steps = 2'000'000;  ///< total pair-update budget
    /// Precompute the full Gram matrix when n ≤ this (memory: n² doubles).
    std::size_t gram_limit = 3000;
    /// Kernel-row LRU cache budget for solves too large for the full Gram
    /// (n > gram_limit): TakeStep's O(n) error refresh re-reads the two
    /// changed rows, so caching whole rows turns its 2n kernel evaluations
    /// into 2n loads on a hit. Cached rows hold exactly the values direct
    /// evaluation would produce (KernelEval is deterministic and bit-
    /// symmetric), so the optimization trajectory — and the trained model —
    /// is bit-identical with the cache on or off. 0 disables the cache.
    std::size_t cache_bytes = 64ull << 20;
    /// LIBSVM-style shrinking: bound multipliers that satisfy KKT beyond tol
    /// are dropped from the error-cache refresh and the step-candidate scans
    /// until the next full sweep, where their errors are reconstructed
    /// exactly from the current iterate before re-examination. Cuts the
    /// per-step O(n) work on mostly-converged solves, but reorders float
    /// updates (the trajectory is no longer bit-identical to the unshrunk
    /// solve, though both converge to tolerance), so it defaults to off.
    bool shrinking = false;
    std::uint64_t seed = 7;  ///< tie-breaking RNG
    /// SvmClassifier-level: worker threads for the one-vs-one pairwise
    /// solves (each binary subproblem is independent and deterministic, so
    /// predictions are identical for every thread count). TrainSmo itself is
    /// single-threaded. 1 = serial; 0 = hardware_concurrency.
    std::size_t num_threads = 1;
    /// Wall-clock / cancellation limits for the solve (checked between
    /// examine calls). A breach stops the solver with the current iterate.
    ExecutionBudget budget;
    /// SvmClassifier-level policy (ignored by TrainSmo itself): when SMO
    /// exhausts max_steps/max_passes without converging, retrain the pair
    /// with the Pegasos primal solver instead of keeping the dubious dual
    /// iterate.
    bool fallback_to_pegasos = true;
};

/// Trained binary SVM. Labels are {−1, +1}.
struct SmoModel {
    KernelParams kernel;
    /// Support vectors and their coefficients α_i·y_i.
    std::vector<std::vector<double>> sv;
    std::vector<double> sv_coef;
    double bias = 0.0;
    /// Primal weights (linear kernel only; empty otherwise).
    std::vector<double> w;
    /// Training α per training row (kept for KKT certification in tests).
    std::vector<double> alpha;
    std::size_t iterations = 0;  ///< pair updates performed
    /// False when the solver stopped before a full KKT-clean sweep: pair-
    /// update budget (max_steps/max_passes) exhausted or execution budget
    /// breached. The model is still usable — it is the current SMO iterate —
    /// but callers may prefer a fallback solver.
    bool converged = true;
    /// The execution-budget breach that stopped the solve (kNone when the
    /// stop was due to max_steps/max_passes or natural convergence).
    BudgetBreach breach = BudgetBreach::kNone;

    /// Decision value f(x); classify by sign.
    double Decision(std::span<const double> x) const;
};

/// Trains on rows of `x` with labels y_i ∈ {−1, +1}.
Result<SmoModel> TrainSmo(const FeatureMatrix& x, const std::vector<int>& y,
                          const SmoConfig& config);

/// Max KKT-condition violation of the trained model on its training set;
/// used by the tests to certify convergence (should be ≤ config.tol + slack).
double MaxKktViolation(const SmoModel& model, const FeatureMatrix& x,
                       const std::vector<int>& y, double c);

}  // namespace dfp
