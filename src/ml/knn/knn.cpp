#include "ml/knn/knn.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace dfp {

std::string KnnClassifier::Name() const { return StrFormat("knn(k=%zu)", k_); }

Status KnnClassifier::Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                            std::size_t num_classes) {
    if (x.rows() == 0) return Status::InvalidArgument("empty training set");
    if (x.rows() != y.size()) {
        return Status::InvalidArgument("KNN label/row count mismatch");
    }
    train_x_ = x;
    train_y_ = y;
    num_classes_ = num_classes;
    return Status::Ok();
}

ClassLabel KnnClassifier::Predict(std::span<const double> x) const {
    const std::size_t k = std::min(k_, train_x_.rows());
    // Partial selection of the k smallest distances.
    std::vector<std::pair<double, std::size_t>> distances;
    distances.reserve(train_x_.rows());
    for (std::size_t r = 0; r < train_x_.rows(); ++r) {
        distances.emplace_back(SquaredDistance(train_x_.Row(r), x), r);
    }
    std::nth_element(distances.begin(),
                     distances.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     distances.end());
    std::vector<std::size_t> votes(num_classes_, 0);
    for (std::size_t i = 0; i < k; ++i) {
        votes[train_y_[distances[i].second]]++;
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < num_classes_; ++c) {
        if (votes[c] > votes[best]) best = c;
    }
    return static_cast<ClassLabel>(best);
}

}  // namespace dfp
