// k-nearest-neighbours classifier.
//
// A lazy learner for the "any model plugs into the feature space" story; on
// the binary item/pattern features the natural metric is Hamming distance,
// which squared Euclidean reduces to.
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace dfp {

/// Majority vote among the k nearest training rows (squared Euclidean).
class KnnClassifier : public Classifier {
  public:
    explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

    std::string Name() const override;
    Status Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                 std::size_t num_classes) override;
    ClassLabel Predict(std::span<const double> x) const override;

  private:
    std::size_t k_;
    std::size_t num_classes_ = 0;
    FeatureMatrix train_x_;
    std::vector<ClassLabel> train_y_;
};

}  // namespace dfp
