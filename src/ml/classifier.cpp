#include "ml/classifier.hpp"

#include <ostream>

namespace dfp {

Status Classifier::SaveModel(std::ostream&) const {
    return Status::FailedPrecondition("learner '" + Name() + "' is not serializable");
}

Status Classifier::LoadModel(std::istream&) {
    return Status::FailedPrecondition("learner '" + Name() + "' is not serializable");
}

}  // namespace dfp
