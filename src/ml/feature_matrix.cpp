#include "ml/feature_matrix.hpp"

namespace dfp {

FeatureMatrix FeatureMatrix::SelectRows(const std::vector<std::size_t>& rows) const {
    FeatureMatrix out(rows.size(), cols_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto src = Row(rows[i]);
        auto dst = out.MutableRow(i);
        for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
    return out;
}

FeatureMatrix FeatureMatrix::SelectCols(const std::vector<std::size_t>& cols) const {
    FeatureMatrix out(rows_, cols.size());
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t j = 0; j < cols.size(); ++j) {
            out.At(r, j) = At(r, cols[j]);
        }
    }
    return out;
}

double Dot(std::span<const double> a, std::span<const double> b) {
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

}  // namespace dfp
