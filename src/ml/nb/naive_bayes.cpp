#include "ml/nb/naive_bayes.hpp"

#include <cmath>
#include <ostream>

#include "common/serialize.hpp"
#include <limits>

namespace dfp {

Status NaiveBayesClassifier::Train(const FeatureMatrix& x,
                                   const std::vector<ClassLabel>& y,
                                   std::size_t num_classes) {
    if (x.rows() == 0) return Status::InvalidArgument("empty training set");
    if (x.rows() != y.size()) {
        return Status::InvalidArgument("NB label/row count mismatch");
    }
    num_classes_ = num_classes;
    cols_ = x.cols();
    std::vector<double> class_count(num_classes, 0.0);
    std::vector<double> on_count(num_classes * cols_, 0.0);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const ClassLabel c = y[r];
        class_count[c] += 1.0;
        const auto row = x.Row(r);
        for (std::size_t f = 0; f < cols_; ++f) {
            if (row[f] > 0.5) on_count[c * cols_ + f] += 1.0;
        }
    }
    const double n = static_cast<double>(x.rows());
    log_prior_.assign(num_classes, 0.0);
    log_on_.assign(num_classes * cols_, 0.0);
    log_off_.assign(num_classes * cols_, 0.0);
    for (std::size_t c = 0; c < num_classes; ++c) {
        log_prior_[c] = std::log((class_count[c] + smoothing_) /
                                 (n + smoothing_ * static_cast<double>(num_classes)));
        for (std::size_t f = 0; f < cols_; ++f) {
            const double p_on = (on_count[c * cols_ + f] + smoothing_) /
                                (class_count[c] + 2.0 * smoothing_);
            log_on_[c * cols_ + f] = std::log(p_on);
            log_off_[c * cols_ + f] = std::log(1.0 - p_on);
        }
    }
    return Status::Ok();
}

ClassLabel NaiveBayesClassifier::Predict(std::span<const double> x) const {
    ClassLabel best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < num_classes_; ++c) {
        double score = log_prior_[c];
        for (std::size_t f = 0; f < cols_; ++f) {
            score += (x[f] > 0.5) ? log_on_[c * cols_ + f] : log_off_[c * cols_ + f];
        }
        if (score > best_score) {
            best_score = score;
            best = static_cast<ClassLabel>(c);
        }
    }
    return best;
}


Status NaiveBayesClassifier::SaveModel(std::ostream& out) const {
    out << "nb-model " << num_classes_ << ' ' << cols_ << ' ';
    WriteDouble(out, smoothing_);
    out << '\n';
    auto dump = [&out](const std::vector<double>& v) {
        for (double x : v) {
            WriteDouble(out, x);
            out << ' ';
        }
        out << '\n';
    };
    dump(log_prior_);
    dump(log_on_);
    dump(log_off_);
    if (!out) return Status::Internal("NB model write failed");
    return Status::Ok();
}

Status NaiveBayesClassifier::LoadModel(std::istream& in) {
    TokenReader reader(in);
    DFP_RETURN_NOT_OK(reader.Expect("nb-model"));
    DFP_RETURN_NOT_OK(reader.ReadCount(&num_classes_));
    DFP_RETURN_NOT_OK(reader.ReadCount(&cols_));
    if (num_classes_ != 0 && cols_ > kMaxModelElements / num_classes_) {
        return Status::InvalidArgument(
            "NB parameter matrix exceeds the sanity cap");
    }
    DFP_RETURN_NOT_OK(reader.Read(&smoothing_));
    DFP_RETURN_NOT_OK(reader.ReadDoubles(num_classes_, &log_prior_));
    DFP_RETURN_NOT_OK(reader.ReadDoubles(num_classes_ * cols_, &log_on_));
    DFP_RETURN_NOT_OK(reader.ReadDoubles(num_classes_ * cols_, &log_off_));
    return Status::Ok();
}

}  // namespace dfp
