// Bernoulli naive Bayes over binary features.
//
// A third learner demonstrating that the framework's augmented feature space
// plugs into any model ("any learning algorithm can be used" — Section 5).
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace dfp {

/// Bernoulli NB with Laplace smoothing; features are binarized at > 0.5.
class NaiveBayesClassifier : public Classifier {
  public:
    explicit NaiveBayesClassifier(double smoothing = 1.0) : smoothing_(smoothing) {}

    std::string Name() const override { return "naive-bayes"; }
    std::string TypeId() const override { return "nb"; }
    Status Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                 std::size_t num_classes) override;
    ClassLabel Predict(std::span<const double> x) const override;
    Status SaveModel(std::ostream& out) const override;
    Status LoadModel(std::istream& in) override;

  private:
    double smoothing_;
    std::size_t num_classes_ = 0;
    std::vector<double> log_prior_;
    /// log P(x_f = 1 | c) and log P(x_f = 0 | c), row-major [class][feature].
    std::vector<double> log_on_;
    std::vector<double> log_off_;
    std::size_t cols_ = 0;
};

}  // namespace dfp
