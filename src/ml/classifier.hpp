// Learner interface: any model that trains on a FeatureMatrix plugs into the
// frequent-pattern pipeline (one of the framework's selling points over
// associative classification, which is tied to rule models).
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "data/dataset.hpp"
#include "ml/feature_matrix.hpp"

namespace dfp {

/// Abstract supervised classifier over dense feature vectors.
class Classifier {
  public:
    virtual ~Classifier() = default;

    virtual std::string Name() const = 0;

    /// Stable identifier used by model (de)serialization ("svm", "c4.5",
    /// "nb", "pegasos"); empty when the learner is not serializable.
    virtual std::string TypeId() const { return ""; }

    /// Persists the trained model. Default: not serializable.
    virtual Status SaveModel(std::ostream& out) const;
    /// Restores a model saved by SaveModel. Default: not serializable.
    virtual Status LoadModel(std::istream& in);

    /// Trains on X (one row per instance) with labels in [0, num_classes).
    virtual Status Train(const FeatureMatrix& x, const std::vector<ClassLabel>& y,
                         std::size_t num_classes) = 0;

    /// Installs execution limits for subsequent Train() calls. Budget-aware
    /// learners (SVM grid search, Pegasos) honour the deadline / cancel token
    /// cooperatively; the default ignores it.
    virtual void SetExecutionBudget(const ExecutionBudget& /*budget*/) {}

    /// Requests `num_threads` workers for subsequent Train() calls (0 =
    /// hardware_concurrency). Learners with internal parallelism (the OvO
    /// SVM) honour it; the default ignores it. Parallel learners must keep
    /// trained models identical across thread counts.
    virtual void SetNumThreads(std::size_t /*num_threads*/) {}

    /// Predicts the label of one feature vector (dimension == training cols).
    virtual ClassLabel Predict(std::span<const double> x) const = 0;

    /// Fraction of rows of `x` predicted as `y`.
    double Accuracy(const FeatureMatrix& x, const std::vector<ClassLabel>& y) const {
        if (x.rows() == 0) return 0.0;
        std::size_t correct = 0;
        for (std::size_t r = 0; r < x.rows(); ++r) {
            if (Predict(x.Row(r)) == y[r]) ++correct;
        }
        return static_cast<double>(correct) / static_cast<double>(x.rows());
    }
};

/// Factory so cross-validation can train a fresh model per fold.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace dfp
