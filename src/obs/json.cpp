#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/string_util.hpp"

namespace dfp::obs {

void WriteJsonString(std::ostream& out, std::string_view s) {
    out << '"';
    for (char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\r': out << "\\r"; break;
            case '\t': out << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out << buf;
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

void WriteJsonNumber(std::ostream& out, double v) {
    if (!std::isfinite(v)) {
        out << "null";
        return;
    }
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 9.0e15) {
        out << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out << buf;
}

JsonValue JsonValue::Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
}

JsonValue JsonValue::Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
}

JsonValue JsonValue::String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
    JsonValue v;
    v.kind_ = Kind::kArray;
    v.array_ = std::move(items);
    return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
    JsonValue v;
    v.kind_ = Kind::kObject;
    v.object_ = std::move(members);
    return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    const auto it = object_.find(std::string(key));
    return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<JsonValue> ParseDocument() {
        JsonValue value;
        DFP_RETURN_NOT_OK(ParseValue(&value));
        SkipWhitespace();
        if (pos_ != text_.size()) {
            return Status::ParseError(
                StrFormat("trailing characters at offset %zu", pos_));
        }
        return value;
    }

  private:
    Status ParseValue(JsonValue* out) {
        SkipWhitespace();
        if (pos_ >= text_.size()) {
            return Status::ParseError("unexpected end of JSON input");
        }
        switch (text_[pos_]) {
            case '{': return ParseObject(out);
            case '[': return ParseArray(out);
            case '"': {
                std::string s;
                DFP_RETURN_NOT_OK(ParseString(&s));
                *out = JsonValue::String(std::move(s));
                return Status::Ok();
            }
            case 't':
                DFP_RETURN_NOT_OK(Expect("true"));
                *out = JsonValue::Bool(true);
                return Status::Ok();
            case 'f':
                DFP_RETURN_NOT_OK(Expect("false"));
                *out = JsonValue::Bool(false);
                return Status::Ok();
            case 'n':
                DFP_RETURN_NOT_OK(Expect("null"));
                *out = JsonValue::Null();
                return Status::Ok();
            default: return ParseNumber(out);
        }
    }

    Status ParseObject(JsonValue* out) {
        ++pos_;  // '{'
        std::map<std::string, JsonValue> members;
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = JsonValue::Object(std::move(members));
            return Status::Ok();
        }
        while (true) {
            SkipWhitespace();
            std::string key;
            DFP_RETURN_NOT_OK(ParseString(&key));
            SkipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                return Status::ParseError("expected ':' in object");
            }
            ++pos_;
            JsonValue value;
            DFP_RETURN_NOT_OK(ParseValue(&value));
            members.emplace(std::move(key), std::move(value));
            SkipWhitespace();
            if (pos_ >= text_.size()) {
                return Status::ParseError("unterminated object");
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                break;
            }
            return Status::ParseError("expected ',' or '}' in object");
        }
        *out = JsonValue::Object(std::move(members));
        return Status::Ok();
    }

    Status ParseArray(JsonValue* out) {
        ++pos_;  // '['
        std::vector<JsonValue> items;
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = JsonValue::Array(std::move(items));
            return Status::Ok();
        }
        while (true) {
            JsonValue value;
            DFP_RETURN_NOT_OK(ParseValue(&value));
            items.push_back(std::move(value));
            SkipWhitespace();
            if (pos_ >= text_.size()) {
                return Status::ParseError("unterminated array");
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                break;
            }
            return Status::ParseError("expected ',' or ']' in array");
        }
        *out = JsonValue::Array(std::move(items));
        return Status::Ok();
    }

    Status ParseString(std::string* out) {
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            return Status::ParseError("expected string");
        }
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return Status::Ok();
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out->push_back('"'); break;
                case '\\': out->push_back('\\'); break;
                case '/': out->push_back('/'); break;
                case 'n': out->push_back('\n'); break;
                case 'r': out->push_back('\r'); break;
                case 't': out->push_back('\t'); break;
                case 'b': out->push_back('\b'); break;
                case 'f': out->push_back('\f'); break;
                case 'u': {
                    // Keep it simple: skip the 4 hex digits, emit '?' for
                    // non-ASCII escapes (reports never produce them).
                    if (text_.size() - pos_ < 4) {
                        return Status::ParseError("truncated \\u escape");
                    }
                    pos_ += 4;
                    out->push_back('?');
                    break;
                }
                default: return Status::ParseError("bad escape in string");
            }
        }
        return Status::ParseError("unterminated string");
    }

    Status ParseNumber(JsonValue* out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        double v = 0.0;
        if (pos_ == start || !ParseDouble(text_.substr(start, pos_ - start), &v)) {
            return Status::ParseError(
                StrFormat("malformed number at offset %zu", start));
        }
        *out = JsonValue::Number(v);
        return Status::Ok();
    }

    Status Expect(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) {
            return Status::ParseError(StrFormat("expected '%.*s'",
                                                static_cast<int>(literal.size()),
                                                literal.data()));
        }
        pos_ += literal.size();
        return Status::Ok();
    }

    void SkipWhitespace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
    return Parser(text).ParseDocument();
}

}  // namespace dfp::obs
