#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace dfp::obs {

namespace {

void WriteNumber(std::ostringstream& out, double v) { WriteJsonNumber(out, v); }

const double kSummaryQuantiles[] = {0.5, 0.9, 0.95, 0.99, 0.999};
const char* const kSummaryQuantileLabels[] = {"0.5", "0.9", "0.95", "0.99",
                                              "0.999"};

void RenderHdrSummary(std::ostringstream& out, const std::string& name,
                      const HdrSnapshot& snap, const char* kind) {
    const std::string prom = PrometheusName(name);
    out << "# HELP " << prom << ' '
        << PrometheusHelpEscape(std::string(kind) + " of " + name) << '\n';
    out << "# TYPE " << prom << " summary\n";
    for (std::size_t q = 0; q < std::size(kSummaryQuantiles); ++q) {
        out << prom << "{quantile=\"" << kSummaryQuantileLabels[q] << "\"} ";
        WriteNumber(out, snap.ValueAtQuantile(kSummaryQuantiles[q]));
        out << '\n';
    }
    out << prom << "_sum ";
    WriteNumber(out, snap.sum);
    out << '\n' << prom << "_count " << snap.count << '\n';
}

void WriteHdrJson(std::ostringstream& out, const HdrSnapshot& snap) {
    out << "{\"count\":" << snap.count << ",\"sum\":";
    WriteJsonNumber(out, snap.sum);
    out << ",\"mean\":";
    WriteJsonNumber(out, snap.mean());
    for (std::size_t q = 0; q < std::size(kSummaryQuantiles); ++q) {
        out << ",\"p" << kSummaryQuantileLabels[q] << "\":";
        WriteJsonNumber(out, snap.ValueAtQuantile(kSummaryQuantiles[q]));
    }
    out << ",\"rel_error\":";
    WriteJsonNumber(out, snap.layout.RelativeErrorBound());
    out << '}';
}

}  // namespace

std::string PrometheusName(std::string_view name) {
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty()) out = "_";
    if (out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
    return out;
}

std::string PrometheusHelpEscape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
    std::ostringstream out;
    for (const auto& [name, value] : snapshot.counters) {
        const std::string prom = PrometheusName(name);
        out << "# HELP " << prom << ' ' << PrometheusHelpEscape(name) << '\n';
        out << "# TYPE " << prom << " counter\n";
        out << prom << ' ' << value << '\n';
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string prom = PrometheusName(name);
        out << "# HELP " << prom << ' ' << PrometheusHelpEscape(name) << '\n';
        out << "# TYPE " << prom << " gauge\n";
        out << prom << ' ';
        WriteNumber(out, value);
        out << '\n';
    }
    for (const auto& [name, data] : snapshot.histograms) {
        const std::string prom = PrometheusName(name);
        out << "# HELP " << prom << ' ' << PrometheusHelpEscape(name) << '\n';
        out << "# TYPE " << prom << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
            cumulative += data.bucket_counts[i];
            out << prom << "_bucket{le=\"";
            if (i < data.bounds.size()) {
                WriteNumber(out, data.bounds[i]);
            } else {
                out << "+Inf";
            }
            out << "\"} " << cumulative << '\n';
        }
        out << prom << "_sum ";
        WriteNumber(out, data.sum);
        out << '\n' << prom << "_count " << data.count << '\n';
    }
    for (const auto& [name, snap] : snapshot.hdrs) {
        RenderHdrSummary(out, name, snap, "hdr summary");
    }
    for (const auto& [name, snap] : snapshot.windows) {
        RenderHdrSummary(out, name, snap, "trailing-window summary");
    }
    return out.str();
}

std::string RenderSnapshotJson(const MetricsSnapshot& snapshot) {
    std::ostringstream out;
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snapshot.counters) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':' << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snapshot.gauges) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteJsonNumber(out, value);
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, data] : snapshot.histograms) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ":{\"count\":" << data.count << ",\"sum\":";
        WriteJsonNumber(out, data.sum);
        out << '}';
    }
    out << "},\"hdr\":{";
    first = true;
    for (const auto& [name, snap] : snapshot.hdrs) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteHdrJson(out, snap);
    }
    out << "},\"windows\":{";
    first = true;
    for (const auto& [name, snap] : snapshot.windows) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteHdrJson(out, snap);
    }
    out << "}}";
    return out.str();
}

Status WritePrometheusFile(const std::string& path) {
    return WriteFileAtomic(path, RenderPrometheus(Registry::Get().Snapshot()));
}

PeriodicSnapshotWriter::PeriodicSnapshotWriter(std::string path,
                                               double period_seconds)
    : path_(std::move(path)),
      period_seconds_(std::max(0.05, period_seconds)) {
    thread_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(mu_);
        const auto period = std::chrono::duration<double>(period_seconds_);
        while (!stop_) {
            cv_.wait_for(lock, period, [this] { return stop_; });
            if (stop_) return;
            lock.unlock();
            const Status st = WriteNow();
            if (!st.ok()) DFP_LOG_WARN("snapshot write: " + st.ToString());
            lock.lock();
        }
    });
}

PeriodicSnapshotWriter::~PeriodicSnapshotWriter() { Stop(); }

Status PeriodicSnapshotWriter::WriteNow() const {
    return WriteFileAtomic(
        path_, RenderSnapshotJson(Registry::Get().Snapshot()) + "\n");
}

void PeriodicSnapshotWriter::Stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    const Status st = WriteNow();  // final state always lands on disk
    if (!st.ok()) DFP_LOG_WARN("final snapshot write: " + st.ToString());
}

MetricsHttpServer::MetricsHttpServer(MetricsHttpConfig config)
    : config_(config) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
    auto listener = TcpListen(config_.port);
    if (!listener.ok()) return listener.status();
    listener_ = std::move(*listener);
    auto port = LocalPort(listener_);
    if (!port.ok()) return port.status();
    port_ = *port;
    thread_ = std::thread([this] { ServeLoop(); });
    return Status::Ok();
}

void MetricsHttpServer::Stop() {
    if (stopping_.exchange(true)) {
        if (thread_.joinable()) thread_.join();
        return;
    }
    listener_.ShutdownBoth();
    if (thread_.joinable()) thread_.join();
    listener_.Close();
}

void MetricsHttpServer::ServeLoop() {
    for (;;) {
        auto accepted = TcpAccept(listener_);
        if (!accepted.ok()) return;  // listener shut down
        if (stopping_.load(std::memory_order_relaxed)) return;
        HandleConnection(std::move(*accepted));
    }
}

void MetricsHttpServer::HandleConnection(Socket socket) {
    (void)socket.SetRecvTimeout(config_.recv_timeout_s);
    LineReader reader(socket);
    std::string request_line;
    auto got = reader.ReadLine(&request_line, 8192);
    if (!got.ok() || !*got) return;
    // Drain headers until the blank line; a broken/stalled client just drops.
    std::string header;
    for (;;) {
        auto line = reader.ReadLine(&header, 8192);
        if (!line.ok() || !*line) return;
        if (header.empty()) break;
    }
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? request_line : request_line.substr(0, sp1);
    const std::string path =
        sp2 == std::string::npos
            ? std::string()
            : request_line.substr(sp1 + 1, sp2 - sp1 - 1);

    std::string status_line;
    std::string content_type;
    std::string body;
    if (method != "GET") {
        status_line = "HTTP/1.1 405 Method Not Allowed";
        content_type = "text/plain";
        body = "method not allowed\n";
    } else if (path == "/metrics") {
        status_line = "HTTP/1.1 200 OK";
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        body = RenderPrometheus(Registry::Get().Snapshot());
    } else if (path == "/metrics.json") {
        status_line = "HTTP/1.1 200 OK";
        content_type = "application/json";
        body = RenderSnapshotJson(Registry::Get().Snapshot()) + "\n";
    } else if (path == "/healthz") {
        const bool ready =
            config_.ready_check == nullptr || config_.ready_check();
        status_line = ready ? "HTTP/1.1 200 OK"
                            : "HTTP/1.1 503 Service Unavailable";
        content_type = "text/plain";
        body = ready ? "ok\n" : "unavailable\n";
    } else {
        status_line = "HTTP/1.1 404 Not Found";
        content_type = "text/plain";
        body = "not found (try /metrics, /metrics.json or /healthz)\n";
    }
    std::ostringstream response;
    response << status_line << "\r\nContent-Type: " << content_type
             << "\r\nContent-Length: " << body.size()
             << "\r\nConnection: close\r\n\r\n"
             << body;
    (void)socket.SendAll(response.str());
    socket.ShutdownBoth();
}

}  // namespace dfp::obs
