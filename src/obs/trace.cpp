#include "obs/trace.hpp"

#include <atomic>
#include <cassert>

namespace dfp::obs {

namespace {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace

void EnableTracing(bool enabled) {
    g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
    return g_tracing_enabled.load(std::memory_order_relaxed);
}

Tracer& Tracer::Get() {
    thread_local Tracer tracer;
    return tracer;
}

SpanNode* Tracer::BeginSpan(std::string name) {
    auto node = std::make_unique<SpanNode>();
    node->name = std::move(name);
    SpanNode* raw = node.get();
    if (stack_.empty()) {
        pending_roots_.push_back(std::move(node));
    } else {
        stack_.back()->children.push_back(std::move(node));
    }
    stack_.push_back(raw);
    return raw;
}

void Tracer::EndSpan(SpanNode* node, double seconds) {
    assert(!stack_.empty() && stack_.back() == node &&
           "spans must close in LIFO order");
    if (stack_.empty() || stack_.back() != node) return;
    node->seconds = seconds;
    stack_.pop_back();
    if (stack_.empty()) {
        // The root just completed: move it from pending to the done list.
        for (auto it = pending_roots_.begin(); it != pending_roots_.end(); ++it) {
            if (it->get() == node) {
                roots_.push_back(std::move(*it));
                pending_roots_.erase(it);
                break;
            }
        }
    }
}

std::vector<std::unique_ptr<SpanNode>> Tracer::TakeRoots() {
    std::vector<std::unique_ptr<SpanNode>> out;
    out.swap(roots_);
    return out;
}

Span::Span(std::string_view name) {
    if (TracingEnabled()) {
        node_ = Tracer::Get().BeginSpan(std::string(name));
    }
}

Span::~Span() {
    if (node_ != nullptr) {
        Tracer::Get().EndSpan(node_, watch_.ElapsedSeconds());
    }
}

void Span::Annotate(std::string_view key, double value) {
    if (node_ != nullptr) {
        node_->annotations.emplace_back(std::string(key), value);
    }
}

}  // namespace dfp::obs
