#include "obs/reqtrace.hpp"

#include <chrono>
#include <cstring>
#include <sstream>
#include <type_traits>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dfp::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessOrigin() {
    static const Clock::time_point origin = Clock::now();
    return origin;
}

std::size_t RoundUpPow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
}

}  // namespace

double NowMicros() {
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     ProcessOrigin())
        .count();
}

std::uint64_t RequestTrace::NextId() {
    static std::atomic<std::uint64_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t CompressedThreadId() {
    static std::atomic<std::uint64_t> next{0};
    thread_local const std::uint64_t id =
        next.fetch_add(1, std::memory_order_relaxed) + 1;
    return id;
}

TraceRing::TraceRing(std::size_t capacity) {
    const std::size_t slots = RoundUpPow2(capacity);
    mask_ = slots - 1;
    slots_ = std::make_unique<Slot[]>(slots);
}

static_assert(std::is_trivially_copyable_v<RequestTrace>,
              "TraceRing stages RequestTrace through memcpy");

void TraceRing::StoreTrace(Slot& slot, const RequestTrace& trace) {
    std::uint64_t staged[kWords] = {};
    std::memcpy(staged, &trace, sizeof(trace));
    for (std::size_t w = 0; w < kWords; ++w) {
        slot.words[w].store(staged[w], std::memory_order_relaxed);
    }
}

RequestTrace TraceRing::LoadTrace(const Slot& slot) {
    std::uint64_t staged[kWords];
    for (std::size_t w = 0; w < kWords; ++w) {
        staged[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    RequestTrace trace;
    std::memcpy(&trace, staged, sizeof(trace));
    return trace;
}

void TraceRing::Push(const RequestTrace& trace) {
    const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[idx & mask_];
    // Per-slot seqlock: odd marks the slot in-flight. Two writers lapping
    // each other onto the same slot both bump the sequence, so a reader can
    // only accept a slot whose sequence was even AND unchanged around its
    // copy — torn reads are impossible to return. The payload itself goes
    // through relaxed atomic words (StoreTrace/LoadTrace) so the concurrent
    // accesses the seqlock tolerates are not data races.
    slot.seq.fetch_add(1, std::memory_order_acq_rel);
    StoreTrace(slot, trace);
    slot.seq.fetch_add(1, std::memory_order_release);
}

std::vector<RequestTrace> TraceRing::Dump() const {
    const std::size_t slots = mask_ + 1;
    const std::uint64_t end = next_.load(std::memory_order_acquire);
    const std::uint64_t begin = end > slots ? end - slots : 0;
    std::vector<RequestTrace> out;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t i = begin; i < end; ++i) {
        const Slot& slot = slots_[i & mask_];
        const std::uint64_t seq_before =
            slot.seq.load(std::memory_order_acquire);
        if (seq_before % 2 != 0) continue;  // writer mid-flight
        const RequestTrace copy = LoadTrace(slot);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
            continue;  // overwritten while copying
        }
        out.push_back(copy);
    }
    return out;
}

namespace {

struct StageEvent {
    const char* name;
    double start_us;
    double end_us;
    std::uint64_t tid;
};

void AppendEvent(std::ostringstream& out, bool& first, const StageEvent& stage,
                 const RequestTrace& trace) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << stage.name << "\",\"ph\":\"X\",\"ts\":";
    WriteJsonNumber(out, stage.start_us);
    out << ",\"dur\":";
    WriteJsonNumber(out, stage.end_us > stage.start_us
                             ? stage.end_us - stage.start_us
                             : 0.0);
    out << ",\"pid\":1,\"tid\":" << stage.tid << ",\"args\":{\"req\":"
        << trace.id << ",\"batch\":" << trace.batch_size
        << ",\"outcome\":" << trace.outcome << "}}";
}

}  // namespace

std::string RenderChromeTrace(const std::vector<RequestTrace>& traces) {
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const RequestTrace& trace : traces) {
        if (trace.dequeue_us > 0.0) {
            AppendEvent(out, first,
                        {"queue", trace.submit_us, trace.dequeue_us,
                         trace.submit_tid},
                        trace);
        }
        if (trace.score_start_us > 0.0) {
            AppendEvent(out, first,
                        {"batch_wait", trace.dequeue_us, trace.score_start_us,
                         trace.score_tid},
                        trace);
            AppendEvent(out, first,
                        {"score", trace.score_start_us, trace.score_end_us,
                         trace.score_tid},
                        trace);
        }
        if (trace.serialize_start_us > 0.0) {
            AppendEvent(out, first,
                        {"serialize", trace.serialize_start_us,
                         trace.serialize_end_us, trace.submit_tid},
                        trace);
        }
    }
    out << "],\"displayTimeUnit\":\"ms\"}";
    return out.str();
}

bool SlowRequestSampler::Sample(const RequestTrace& trace) {
    if (!enabled()) return false;
    const double total_ms = trace.TotalMs();
    if (total_ms < threshold_ms_) return false;
    Registry::Get().GetCounter("dfp.serve.slow_requests").Inc();
    const double now_us = NowMicros();
    double last = last_log_us_.load(std::memory_order_relaxed);
    if (now_us - last < min_interval_ms_ * 1000.0 ||
        !last_log_us_.compare_exchange_strong(last, now_us,
                                              std::memory_order_relaxed)) {
        return true;  // over threshold, but rate-limited out of the log
    }
    const auto stage_ms = [](double begin_us, double end_us) {
        return end_us > begin_us ? (end_us - begin_us) / 1000.0 : 0.0;
    };
    DFP_LOG_WARN(StrFormat(
        "slow request #%llu: total %.3fms (queue %.3f, batch_wait %.3f, "
        "score %.3f, serialize %.3f) batch=%u outcome=%u",
        static_cast<unsigned long long>(trace.id), total_ms,
        stage_ms(trace.submit_us, trace.dequeue_us),
        stage_ms(trace.dequeue_us, trace.score_start_us),
        stage_ms(trace.score_start_us, trace.score_end_us),
        stage_ms(trace.serialize_start_us, trace.serialize_end_us),
        unsigned{trace.batch_size}, unsigned{trace.outcome}));
    return true;
}

}  // namespace dfp::obs
