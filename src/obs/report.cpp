#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "obs/json.hpp"

namespace dfp::obs {

RunReport CollectRunReport(std::string name) {
    RunReport report;
    report.name = std::move(name);
    report.metrics = Registry::Get().Snapshot();
    report.guard = GuardLog::Get().Drain();
    report.spans = Tracer::Get().TakeRoots();
    return report;
}

void WriteSpanJson(std::ostream& out, const SpanNode& node) {
    out << "{\"name\":";
    WriteJsonString(out, node.name);
    out << ",\"seconds\":";
    WriteJsonNumber(out, node.seconds);
    out << ",\"annotations\":{";
    for (std::size_t i = 0; i < node.annotations.size(); ++i) {
        if (i > 0) out << ',';
        WriteJsonString(out, node.annotations[i].first);
        out << ':';
        WriteJsonNumber(out, node.annotations[i].second);
    }
    out << "},\"children\":[";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out << ',';
        WriteSpanJson(out, *node.children[i]);
    }
    out << "]}";
}

namespace {

void WriteHdrSummaryJson(std::ostream& out, const HdrSnapshot& snap) {
    static const double kQ[] = {0.5, 0.9, 0.95, 0.99, 0.999};
    static const char* const kLabels[] = {"0.5", "0.9", "0.95", "0.99",
                                          "0.999"};
    out << "{\"count\":";
    WriteJsonNumber(out, static_cast<double>(snap.count));
    out << ",\"sum\":";
    WriteJsonNumber(out, snap.sum);
    out << ",\"mean\":";
    WriteJsonNumber(out, snap.mean());
    for (std::size_t i = 0; i < 5; ++i) {
        out << ",\"p" << kLabels[i] << "\":";
        WriteJsonNumber(out, snap.ValueAtQuantile(kQ[i]));
    }
    out << '}';
}

void WriteHistogramJson(std::ostream& out, const HistogramData& data) {
    out << "{\"count\":";
    WriteJsonNumber(out, static_cast<double>(data.count));
    out << ",\"sum\":";
    WriteJsonNumber(out, data.sum);
    out << ",\"buckets\":[";
    for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
        if (i > 0) out << ',';
        out << "{\"le\":";
        if (i < data.bounds.size()) {
            WriteJsonNumber(out, data.bounds[i]);
        } else {
            out << "null";  // the overflow bucket
        }
        out << ",\"count\":";
        WriteJsonNumber(out, static_cast<double>(data.bucket_counts[i]));
        out << '}';
    }
    out << "]}";
}

}  // namespace

void WriteReportJson(std::ostream& out, const RunReport& report) {
    out << "{\"name\":";
    WriteJsonString(out, report.name);
    out << ",\"metrics\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : report.metrics.counters) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteJsonNumber(out, static_cast<double>(value));
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : report.metrics.gauges) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteJsonNumber(out, value);
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, data] : report.metrics.histograms) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteHistogramJson(out, data);
    }
    out << "},\"hdr\":{";
    first = true;
    for (const auto& [name, snap] : report.metrics.hdrs) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteHdrSummaryJson(out, snap);
    }
    out << "},\"windows\":{";
    first = true;
    for (const auto& [name, snap] : report.metrics.windows) {
        if (!first) out << ',';
        first = false;
        WriteJsonString(out, name);
        out << ':';
        WriteHdrSummaryJson(out, snap);
    }
    out << "}},\"guard\":[";
    for (std::size_t i = 0; i < report.guard.size(); ++i) {
        if (i > 0) out << ',';
        const GuardEvent& event = report.guard[i];
        out << "{\"stage\":";
        WriteJsonString(out, event.stage);
        out << ",\"kind\":";
        WriteJsonString(out, event.kind);
        out << ",\"value\":";
        WriteJsonNumber(out, event.value);
        out << '}';
    }
    out << "],\"spans\":[";
    for (std::size_t i = 0; i < report.spans.size(); ++i) {
        if (i > 0) out << ',';
        WriteSpanJson(out, *report.spans[i]);
    }
    out << "]}";
}

std::string ReportToJsonString(const RunReport& report) {
    std::ostringstream out;
    WriteReportJson(out, report);
    return out.str();
}

Status WriteReportJsonFile(const RunReport& report, const std::string& path) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        return Status::Internal("cannot open report file: " + path);
    }
    WriteReportJson(out, report);
    out << '\n';
    out.flush();
    if (!out) {
        return Status::Internal("failed writing report file: " + path);
    }
    return Status::Ok();
}

namespace {

void WriteSpanTable(std::ostream& out, const SpanNode& node, int depth) {
    out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << node.name
        << "  " << std::fixed << std::setprecision(4) << node.seconds << "s";
    for (const auto& [key, value] : node.annotations) {
        out << "  " << key << "=" << std::defaultfloat << value
            << std::fixed;
    }
    out << '\n';
    for (const auto& child : node.children) {
        WriteSpanTable(out, *child, depth + 1);
    }
}

}  // namespace

void WriteReportTable(std::ostream& out, const RunReport& report) {
    out << "run report: " << report.name << '\n';
    if (!report.guard.empty()) {
        out << "-- guard --\n";
        for (const GuardEvent& event : report.guard) {
            out << "  " << event.stage << "  " << event.kind << "  "
                << std::defaultfloat << event.value << '\n';
        }
    }
    if (!report.spans.empty()) {
        out << "-- spans --\n";
        for (const auto& root : report.spans) WriteSpanTable(out, *root, 1);
    }
    std::size_t width = 0;
    for (const auto& [name, value] : report.metrics.counters) {
        width = std::max(width, name.size());
    }
    for (const auto& [name, value] : report.metrics.gauges) {
        width = std::max(width, name.size());
    }
    for (const auto& [name, data] : report.metrics.histograms) {
        width = std::max(width, name.size());
    }
    for (const auto& [name, snap] : report.metrics.hdrs) {
        width = std::max(width, name.size());
    }
    for (const auto& [name, snap] : report.metrics.windows) {
        width = std::max(width, name.size());
    }
    if (width > 0) out << "-- metrics --\n";
    for (const auto& [name, value] : report.metrics.counters) {
        out << "  " << std::left << std::setw(static_cast<int>(width)) << name
            << "  " << value << '\n';
    }
    for (const auto& [name, value] : report.metrics.gauges) {
        out << "  " << std::left << std::setw(static_cast<int>(width)) << name
            << "  " << std::defaultfloat << value << '\n';
    }
    for (const auto& [name, data] : report.metrics.histograms) {
        out << "  " << std::left << std::setw(static_cast<int>(width)) << name
            << "  count=" << data.count << " sum=" << std::defaultfloat
            << data.sum << '\n';
    }
    for (const auto& [name, snap] : report.metrics.hdrs) {
        out << "  " << std::left << std::setw(static_cast<int>(width)) << name
            << "  count=" << snap.count << " p50=" << std::defaultfloat
            << snap.ValueAtQuantile(0.5) << " p99=" << snap.ValueAtQuantile(0.99)
            << '\n';
    }
    for (const auto& [name, snap] : report.metrics.windows) {
        out << "  " << std::left << std::setw(static_cast<int>(width)) << name
            << "  count=" << snap.count << " p50=" << std::defaultfloat
            << snap.ValueAtQuantile(0.5) << " p99=" << snap.ValueAtQuantile(0.99)
            << '\n';
    }
}

}  // namespace dfp::obs
