// Metric exporters for live serving: Prometheus text exposition, periodic
// JSON snapshots, and a minimal HTTP side-port for `GET /metrics`.
//
// * RenderPrometheus() turns a MetricsSnapshot into Prometheus text
//   exposition format 0.0.4: counters and gauges as single samples,
//   fixed-bucket histograms as `_bucket{le=...}` series with CUMULATIVE
//   counts plus `_sum`/`_count`, and HDR histograms (cumulative and
//   trailing-window) as quantile summaries (p50/p90/p95/p99/p99.9). Output
//   is byte-deterministic for a given snapshot: sections in a fixed order,
//   names alphabetical within each section — so the protocol `{"op":
//   "metrics"}` verb and the HTTP port provably serve identical payloads.
// * File snapshots go through common/fileio's WriteFileAtomic (tmp+rename):
//   a reader never observes a half-written snapshot file.
//   PeriodicSnapshotWriter drives it on a background thread for
//   sidecar-style collection (tail the file, no port).
// * MetricsHttpServer answers `GET /metrics` (Prometheus), `GET
//   /metrics.json` (JSON snapshot) and `GET /healthz` (liveness/readiness)
//   on its own listener so scrapers and probes never consume
//   prediction-protocol connection slots. Connections are handled
//   sequentially with a receive timeout — scraping is a once-per-seconds
//   affair and must stay boring.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "common/fileio.hpp"
#include "common/socket.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace dfp::obs {

/// Maps a dotted metric name onto the Prometheus charset: every character
/// outside [a-zA-Z0-9_:] becomes '_' ("dfp.serve.latency_ms" ->
/// "dfp_serve_latency_ms"); a leading digit is prefixed with '_'.
std::string PrometheusName(std::string_view name);

/// Escapes a HELP docstring per the exposition format (backslash and
/// newline).
std::string PrometheusHelpEscape(std::string_view text);

/// Renders the full snapshot as Prometheus text exposition (version 0.0.4).
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Renders the full snapshot as a JSON document (counters/gauges/histograms
/// plus HDR quantile summaries).
std::string RenderSnapshotJson(const MetricsSnapshot& snapshot);

/// The one WriteFileAtomic implementation lives in common/fileio; re-exported
/// here because every exporter call site predates the move.
using ::dfp::WriteFileAtomic;

/// Snapshot of the global registry rendered as Prometheus text, written
/// atomically to `path`.
Status WritePrometheusFile(const std::string& path);

/// Background thread that writes a JSON snapshot of the global registry to
/// `path` (atomically) every `period_seconds`. Stop() writes one final
/// snapshot so the file always reflects the end state.
class PeriodicSnapshotWriter {
  public:
    PeriodicSnapshotWriter(std::string path, double period_seconds);
    ~PeriodicSnapshotWriter();

    PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
    PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

    /// One immediate write (also usable standalone, e.g. in tests).
    Status WriteNow() const;

    void Stop();

  private:
    std::string path_;
    double period_seconds_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

struct MetricsHttpConfig {
    /// 0 = kernel-assigned ephemeral port (read back with port()).
    std::uint16_t port = 0;
    /// Receive timeout per connection; a stalled scraper is dropped.
    double recv_timeout_s = 2.0;
    /// Readiness probe for `GET /healthz`: true -> 200 "ok", false -> 503
    /// "unavailable". Null means always ready (bare liveness). The serving
    /// stack wires this to "model installed and not draining".
    std::function<bool()> ready_check;
};

/// Minimal HTTP/1.x responder for metric scrapes. GET /metrics returns the
/// same RenderPrometheus payload as the prediction protocol's "metrics" op;
/// GET /metrics.json returns RenderSnapshotJson; GET /healthz answers the
/// readiness probe. Anything else is 404/405.
class MetricsHttpServer {
  public:
    explicit MetricsHttpServer(MetricsHttpConfig config = {});
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

    Status Start();
    void Stop();

    /// Bound port (valid after Start).
    std::uint16_t port() const { return port_; }

  private:
    void ServeLoop();
    void HandleConnection(Socket socket);

    MetricsHttpConfig config_;
    Socket listener_;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
};

}  // namespace dfp::obs
