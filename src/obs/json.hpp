// Minimal JSON support for run reports: a writer (escaping + number
// formatting) and a small recursive-descent parser used to validate emitted
// reports in tests and to re-ingest BENCH_*.json trajectories.
//
// Deliberately tiny: objects/arrays/strings/numbers/bools/null, UTF-8 passed
// through verbatim, no \uXXXX decoding. Not a general-purpose JSON library.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace dfp::obs {

/// Writes `s` as a double-quoted JSON string with escapes.
void WriteJsonString(std::ostream& out, std::string_view s);

/// Writes a finite double compactly (integral values without trailing ".0"
/// noise); non-finite values are serialized as null.
void WriteJsonNumber(std::ostream& out, double v);

/// Parsed JSON value (tree of variants).
class JsonValue {
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_object() const { return kind_ == Kind::kObject; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }

    double number() const { return number_; }
    bool boolean() const { return bool_; }
    const std::string& string() const { return string_; }
    const std::vector<JsonValue>& array() const { return array_; }
    const std::map<std::string, JsonValue>& object() const { return object_; }

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue* Find(std::string_view key) const;

    static JsonValue Null() { return JsonValue(); }
    static JsonValue Bool(bool b);
    static JsonValue Number(double v);
    static JsonValue String(std::string s);
    static JsonValue Array(std::vector<JsonValue> items);
    static JsonValue Object(std::map<std::string, JsonValue> members);

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is a ParseError).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace dfp::obs
