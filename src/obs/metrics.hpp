// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, cheap enough for hot loops.
//
// Design:
//  * Metric objects live forever once registered; `GetCounter` et al. return a
//    stable reference, so hot paths resolve a metric once (static local or a
//    member) and then touch only a relaxed atomic per update. Tighter loops
//    should accumulate into a plain local and flush once per call — that is
//    what the miners and the SMO solver do.
//  * Reads take a consistent-enough `Snapshot()` copy; writers are never
//    blocked by readers (the registry mutex only guards the name maps).
//  * Names follow `dfp.<module>.<metric>` (see DESIGN.md "Observability").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hdr.hpp"  // HdrHistogram / WindowedHdrHistogram + AtomicAdd

namespace dfp::obs {

/// Monotonically increasing event count.
class Counter {
  public:
    void Inc(std::uint64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (sizes, seconds, ratios).
class Gauge {
  public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }
    void Add(double delta) { AtomicAdd(value_, delta); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/// Plain-data view of a histogram for snapshots and serialization.
struct HistogramData {
    /// Ascending upper bounds; bucket i counts observations <= bounds[i].
    std::vector<double> bounds;
    /// bounds.size() + 1 entries; the last bucket counts v > bounds.back().
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
};

/// Fixed-bucket histogram. Bucket layout is immutable after registration.
///
/// Consistency under concurrent Observe(): `count` is DERIVED from the
/// bucket counts at Read() time (there is no separate count cell to tear),
/// so count == sum(bucket_counts) holds in every snapshot. `sum` is tracked
/// in an independent atomic and may lag the buckets by observations that
/// were mid-flight during the read; Read() clamps the obviously-torn states
/// (negative sum, nonzero sum with zero count) and otherwise reports it
/// as-is — it is an approximation under concurrency, not a ledger.
class Histogram {
  public:
    /// `bounds` must be ascending; empty falls back to DefaultBounds().
    explicit Histogram(std::vector<double> bounds);

    void Observe(double v);
    HistogramData Read() const;
    void Reset();

    /// Decade bounds 0.001 .. 1000 — a sane default for seconds and gains.
    static std::vector<double> DefaultBounds();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
    std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
    /// Cumulative HDR histograms (merged over shards).
    std::map<std::string, HdrSnapshot> hdrs;
    /// Windowed HDR histograms: the TRAILING-WINDOW merge, not all-time.
    std::map<std::string, HdrSnapshot> windows;

    std::size_t TotalMetrics() const {
        return counters.size() + gauges.size() + histograms.size() +
               hdrs.size() + windows.size();
    }
};

/// Global metric registry. Thread-safe; lookups lock only the name maps.
class Registry {
  public:
    static Registry& Get();

    /// Returns the metric registered under `name`, creating it on first use.
    /// References stay valid for the process lifetime.
    Counter& GetCounter(std::string_view name);
    Gauge& GetGauge(std::string_view name);
    /// `bounds` is only consulted on first registration of `name`.
    Histogram& GetHistogram(std::string_view name,
                            std::vector<double> bounds = {});
    /// Sharded log-linear HDR histogram; `config` is only consulted on first
    /// registration of `name`.
    HdrHistogram& GetHdr(std::string_view name, HdrConfig config = {});
    /// Trailing-window HDR histogram (ring of `epochs` shards rotated every
    /// `epoch_seconds` by whoever drives rotation — see WindowFlusher).
    /// Config/epoch parameters are only consulted on first registration.
    WindowedHdrHistogram& GetWindowedHdr(std::string_view name,
                                         HdrConfig config = {},
                                         std::size_t epochs = 8,
                                         double epoch_seconds = 1.25);

    /// Copies all current values.
    MetricsSnapshot Snapshot() const;

    /// Zeroes every metric (names stay registered). Safe against concurrent
    /// Observe()/Record(): every cell is an atomic, so this never races —
    /// but an observation in flight during the reset may survive partially
    /// (e.g. its bucket increment wiped, its sum contribution kept). Reads
    /// clamp the torn combinations; per-run reports accept the slack.
    void ResetValues();

  private:
    Registry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
    std::map<std::string, std::unique_ptr<HdrHistogram>, std::less<>> hdrs_;
    std::map<std::string, std::unique_ptr<WindowedHdrHistogram>, std::less<>>
        windows_;
};

}  // namespace dfp::obs
