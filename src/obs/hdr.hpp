// HDR-style log-linear latency histograms for the live serving path.
//
// The fixed-bucket obs::Histogram is fine for coarse offline timings but
// useless for sub-millisecond serve latencies: a handful of decade buckets
// collapses the entire distribution into one or two cells and p99.9 is
// unrecoverable. HdrHistogram instead covers [min_value, max_value] with
// log-linear buckets — each power-of-two octave is subdivided into S equal
// linear sub-buckets — so every recordable value is representable with a
// bounded RELATIVE error:
//
//     quantile error <= 1 / (2 * subbuckets_per_octave)        (see hdr.cpp)
//
// With the default S = 64 that is <= 0.79% across five orders of magnitude,
// at ~13 KiB of counters per shard.
//
// Recording is sharded per thread: each thread is assigned a shard slot
// round-robin and only ever fetch_adds its own shard's relaxed atomics, so a
// 70k preds/s hot path never bounces one cache line between scoring workers.
// Snapshot() merges the shards into a plain HdrSnapshot, which supports
// quantile queries and cross-snapshot merging (layouts must match).
//
// WindowedHdrHistogram keeps a ring of epoch histograms: Record() lands in
// the current epoch, Rotate() advances the ring and clears the reused slot,
// and TrailingSnapshot() merges the whole ring — a trailing-window view
// covering between (epochs-1) and epochs rotation periods of history.
// Rotation is driven by a WindowFlusher background thread (production) or
// manual Rotate() calls (tests); RotateIfDue() makes concurrent flushers
// harmless.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dfp::obs {

/// Adds `delta` to an atomic double (CAS loop; fetch_add on double is not
/// universally available).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

struct HdrConfig {
    /// Values below `min_value` clamp into bucket 0; values above `max_value`
    /// clamp into the last bucket. Defaults suit millisecond latencies:
    /// 1 microsecond .. 60 seconds.
    double min_value = 1e-3;
    double max_value = 6e4;
    /// Linear subdivisions per power-of-two octave. Larger = tighter
    /// quantiles, more memory. Must be >= 2.
    std::size_t subbuckets_per_octave = 64;
    /// Recording shards (rounded up to a power of two). 0 = auto: the
    /// hardware concurrency, capped at 16.
    std::size_t shards = 0;
};

/// The bucket geometry shared by live histograms and their snapshots.
struct HdrLayout {
    double min_value = 1e-3;
    std::size_t subbuckets = 64;
    std::size_t num_octaves = 0;
    std::size_t num_buckets = 0;  ///< num_octaves * subbuckets

    static HdrLayout FromConfig(const HdrConfig& config);

    /// Bucket index for `v` (clamped into [0, num_buckets)).
    std::size_t IndexFor(double v) const;
    /// Inclusive lower edge of bucket `idx`.
    double LowerBound(std::size_t idx) const;
    /// Width of bucket `idx`.
    double Width(std::size_t idx) const;
    /// The value reported for observations in bucket `idx` (the midpoint).
    double Representative(std::size_t idx) const {
        return LowerBound(idx) + 0.5 * Width(idx);
    }
    /// Worst-case relative error of Representative() vs any in-range value
    /// recorded into the same bucket: 1 / (2 * subbuckets).
    double RelativeErrorBound() const {
        return 1.0 / (2.0 * static_cast<double>(subbuckets));
    }

    bool SameShapeAs(const HdrLayout& other) const {
        return min_value == other.min_value && subbuckets == other.subbuckets &&
               num_buckets == other.num_buckets;
    }
};

/// Merged, plain-data view of an HdrHistogram. `count` is derived from the
/// bucket counts, so it is always internally consistent; `sum` is tracked
/// separately and may lag the buckets by in-flight observations.
struct HdrSnapshot {
    HdrLayout layout;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;

    bool empty() const { return count == 0; }
    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

    /// The representative value of the bucket containing the rank
    /// ceil(q * count) (q clamped to [0, 1]); 0 when empty. Accurate to
    /// layout.RelativeErrorBound() for values inside [min_value, max_value].
    double ValueAtQuantile(double q) const;

    /// Accumulates `other` (layouts must be shape-identical; mismatches are
    /// ignored and counted nowhere — callers control both sides).
    void MergeFrom(const HdrSnapshot& other);
};

class HdrHistogram {
  public:
    explicit HdrHistogram(HdrConfig config = {});

    /// Thread-safe, wait-free on the hot path: one relaxed fetch_add into
    /// this thread's shard plus one CAS-loop sum update.
    void Record(double v);

    /// Merges all shards into one snapshot.
    HdrSnapshot Snapshot() const;

    /// Zeroes every shard. Safe against concurrent Record() (all counters
    /// are atomics); an observation racing the reset may survive partially
    /// (bucket kept, sum cleared or vice versa) — acceptable for the
    /// per-run reset this exists for.
    void Reset();

    const HdrLayout& layout() const { return layout_; }
    std::size_t num_shards() const { return shards_.size(); }

  private:
    struct alignas(64) Shard {
        std::vector<std::atomic<std::uint64_t>> counts;
        std::atomic<double> sum{0.0};
    };

    HdrLayout layout_;
    std::size_t shard_mask_ = 0;
    std::vector<Shard> shards_;
};

/// Ring of epoch HdrHistograms for trailing-window quantiles.
class WindowedHdrHistogram {
  public:
    /// `epochs` ring slots, each covering `epoch_seconds` of wall time once
    /// rotation runs at that period. The trailing window therefore spans
    /// between (epochs-1) and epochs * epoch_seconds of history.
    WindowedHdrHistogram(HdrConfig config, std::size_t epochs,
                         double epoch_seconds);

    /// Records into the current epoch.
    void Record(double v);

    /// Merge of every epoch in the ring.
    HdrSnapshot TrailingSnapshot() const;
    /// Snapshot of the current epoch only (tests).
    HdrSnapshot CurrentEpochSnapshot() const;

    /// Advances the ring: the oldest epoch is cleared and becomes current.
    void Rotate();
    /// Rotate() only if at least epoch_seconds elapsed since the last
    /// rotation — concurrent or overlapping flushers cannot over-rotate.
    /// Returns true when a rotation happened.
    bool RotateIfDue();

    /// Clears every epoch (per-run reset).
    void Reset();

    std::size_t epochs() const { return ring_.size(); }
    double epoch_seconds() const { return epoch_seconds_; }
    double window_seconds() const {
        return epoch_seconds_ * static_cast<double>(ring_.size());
    }
    const HdrLayout& layout() const { return ring_.front()->layout(); }

  private:
    std::vector<std::unique_ptr<HdrHistogram>> ring_;
    double epoch_seconds_;
    std::atomic<std::size_t> current_{0};
    std::mutex rotate_mu_;                       ///< serializes rotations
    std::atomic<std::int64_t> last_rotate_ns_;   ///< steady-clock ns
};

/// Background rotation driver: wakes every `period_seconds` and calls
/// RotateIfDue() on every target. Stop() (or destruction) joins the thread.
/// Targets are borrowed and must outlive the flusher — in practice they are
/// registry-owned and immortal.
class WindowFlusher {
  public:
    WindowFlusher(std::vector<WindowedHdrHistogram*> targets,
                  double period_seconds);
    ~WindowFlusher();

    WindowFlusher(const WindowFlusher&) = delete;
    WindowFlusher& operator=(const WindowFlusher&) = delete;

    void Stop();

  private:
    std::vector<WindowedHdrHistogram*> targets_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

}  // namespace dfp::obs
