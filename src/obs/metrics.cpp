#include "obs/metrics.hpp"

#include <algorithm>

namespace dfp::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.empty()) bounds_ = DefaultBounds();
    counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

std::vector<double> Histogram::DefaultBounds() {
    return {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
}

void Histogram::Observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(sum_, v);
}

HistogramData Histogram::Read() const {
    HistogramData data;
    data.bounds = bounds_;
    data.bucket_counts.reserve(counts_.size());
    std::uint64_t count = 0;
    for (const auto& c : counts_) {
        const std::uint64_t loaded = c.load(std::memory_order_relaxed);
        data.bucket_counts.push_back(loaded);
        count += loaded;
    }
    // `count` is derived from the buckets just loaded, so it can never
    // disagree with them (the old independent count cell could). `sum` is
    // best-effort under concurrency; clamp states that are provably torn.
    data.count = count;
    const double sum = sum_.load(std::memory_order_relaxed);
    data.sum = (count == 0 || sum < 0.0) ? 0.0 : sum;
    return data;
}

void Histogram::Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::Get() {
    static Registry* registry = new Registry();  // never destroyed: metric
    return *registry;                            // refs outlive static teardown
}

Counter& Registry::GetCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(std::move(bounds)))
                 .first;
    }
    return *it->second;
}

HdrHistogram& Registry::GetHdr(std::string_view name, HdrConfig config) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hdrs_.find(name);
    if (it == hdrs_.end()) {
        it = hdrs_.emplace(std::string(name),
                           std::make_unique<HdrHistogram>(config))
                 .first;
    }
    return *it->second;
}

WindowedHdrHistogram& Registry::GetWindowedHdr(std::string_view name,
                                               HdrConfig config,
                                               std::size_t epochs,
                                               double epoch_seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = windows_.find(name);
    if (it == windows_.end()) {
        it = windows_
                 .emplace(std::string(name),
                          std::make_unique<WindowedHdrHistogram>(
                              config, epochs, epoch_seconds))
                 .first;
    }
    return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_) {
        snap.counters.emplace(name, counter->value());
    }
    for (const auto& [name, gauge] : gauges_) {
        snap.gauges.emplace(name, gauge->value());
    }
    for (const auto& [name, hist] : histograms_) {
        snap.histograms.emplace(name, hist->Read());
    }
    for (const auto& [name, hdr] : hdrs_) {
        snap.hdrs.emplace(name, hdr->Snapshot());
    }
    for (const auto& [name, window] : windows_) {
        snap.windows.emplace(name, window->TrailingSnapshot());
    }
    return snap;
}

void Registry::ResetValues() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, hist] : histograms_) hist->Reset();
    for (auto& [name, hdr] : hdrs_) hdr->Reset();
    for (auto& [name, window] : windows_) window->Reset();
}

}  // namespace dfp::obs
