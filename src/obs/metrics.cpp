#include "obs/metrics.hpp"

#include <algorithm>

namespace dfp::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.empty()) bounds_ = DefaultBounds();
    counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

std::vector<double> Histogram::DefaultBounds() {
    return {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
}

void Histogram::Observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(sum_, v);
}

HistogramData Histogram::Read() const {
    HistogramData data;
    data.bounds = bounds_;
    data.bucket_counts.reserve(counts_.size());
    for (const auto& c : counts_) {
        data.bucket_counts.push_back(c.load(std::memory_order_relaxed));
    }
    data.count = count_.load(std::memory_order_relaxed);
    data.sum = sum_.load(std::memory_order_relaxed);
    return data;
}

void Histogram::Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::Get() {
    static Registry* registry = new Registry();  // never destroyed: metric
    return *registry;                            // refs outlive static teardown
}

Counter& Registry::GetCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(std::move(bounds)))
                 .first;
    }
    return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_) {
        snap.counters.emplace(name, counter->value());
    }
    for (const auto& [name, gauge] : gauges_) {
        snap.gauges.emplace(name, gauge->value());
    }
    for (const auto& [name, hist] : histograms_) {
        snap.histograms.emplace(name, hist->Read());
    }
    return snap;
}

void Registry::ResetValues() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace dfp::obs
