// Machine-readable run reports: a metrics snapshot plus the completed span
// trees of the current thread, serialized to JSON (for BENCH_*.json
// trajectories and `--report` flags) or a human-readable table.
//
// JSON schema (validated by tests/integration/report_smoke_test.cpp):
//   {
//     "name": "<run name>",
//     "metrics": {
//       "counters":   { "dfp.fpm.closed.nodes_expanded": 123, ... },
//       "gauges":     { "dfp.core.pipeline.mine_seconds": 0.12, ... },
//       "histograms": { "dfp.core.mmrfs.gain": {
//                          "count": 9, "sum": 1.5,
//                          "buckets": [ {"le": 0.01, "count": 2}, ...,
//                                       {"le": null, "count": 0} ] } },
//       "hdr":        { "dfp.serve.latency.total": {
//                          "count": 9, "sum": 1.5, "mean": 0.16,
//                          "p0.5": 0.1, ..., "p0.999": 1.4 } },
//       "windows":    { ... same shape, trailing-window snapshots ... }
//     },
//     "guard": [ { "stage": "fpm.closed", "kind": "deadline",
//                  "value": 1234 }, ... ],
//     "spans": [ { "name": "train", "seconds": 0.5,
//                  "annotations": { "candidates": 42 },
//                  "children": [ ... ] } ]
//   }
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfp::obs {

/// One run's observability payload.
struct RunReport {
    std::string name;
    MetricsSnapshot metrics;
    /// Degradation events (budget breaches, min_sup escalations, solver
    /// fallbacks) drained from the GuardLog; empty on a clean run.
    std::vector<GuardEvent> guard;
    /// Completed root spans (empty when tracing was disabled).
    std::vector<std::unique_ptr<SpanNode>> spans;
};

/// Snapshots the global registry and *takes* this thread's completed span
/// roots and the process-wide guard log (so consecutive runs don't accumulate
/// each other's trees/events).
RunReport CollectRunReport(std::string name);

/// Serializes one span subtree as a JSON object.
void WriteSpanJson(std::ostream& out, const SpanNode& node);

/// Serializes the full report as a single JSON document.
void WriteReportJson(std::ostream& out, const RunReport& report);
std::string ReportToJsonString(const RunReport& report);

/// Writes the JSON document to `path` (overwrites).
Status WriteReportJsonFile(const RunReport& report, const std::string& path);

/// Human-readable dump: indented span tree + aligned metric table.
void WriteReportTable(std::ostream& out, const RunReport& report);

}  // namespace dfp::obs
