// Cross-thread request tracing for the serving path.
//
// A RequestTrace is a tiny plain struct carried WITH a request across the
// dispatcher -> batcher -> scoring-worker thread hops: each stage stamps its
// steady-clock timestamp (microseconds since process start) and the thread
// that scored it. The thread-local obs::Span tree cannot represent this —
// its spans are per-thread and a served request crosses at least two threads.
//
// Completed traces land in a bounded lock-free TraceRing (per-slot seqlock:
// writers never block, a reader skips slots it catches mid-write) and can be
// dumped as Chrome trace-event JSON — load the file in chrome://tracing or
// https://ui.perfetto.dev to see per-request stage bars grouped by the
// thread that executed them.
//
// Stage model (all values microseconds since process start, 0 = not reached):
//   submit ......... Submit() accepted the request onto the queue
//   dequeue ........ the batcher moved it off the queue into a micro-batch
//   score_start .... a scoring worker began this request
//   score_end ...... prediction ready, promise fulfilled
//   serialize_* .... the dispatcher rendered the response line (only for
//                    requests that came through RequestDispatcher)
//
// Derived stage durations (see engine.cpp):
//   queue      = dequeue - submit          (admission queue + batch fill wait)
//   batch_wait = score_start - dequeue     (batch formed -> worker picked it)
//   score      = score_end - score_start
//   serialize  = serialize_end - serialize_start
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dfp::obs {

/// Microseconds since an arbitrary process-wide steady-clock origin.
double NowMicros();

struct RequestTrace {
    std::uint64_t id = 0;
    /// Compressed thread ids (small integers, stable per thread).
    std::uint64_t submit_tid = 0;
    std::uint64_t score_tid = 0;
    double submit_us = 0.0;
    double dequeue_us = 0.0;
    double score_start_us = 0.0;
    double score_end_us = 0.0;
    double serialize_start_us = 0.0;
    double serialize_end_us = 0.0;
    std::uint32_t batch_size = 0;
    /// StatusCode of the outcome (0 = Ok).
    std::uint16_t outcome = 0;

    /// Process-unique trace id.
    static std::uint64_t NextId();

    /// End-to-end latency in milliseconds as observable so far (serialize end
    /// if stamped, else score end, else 0).
    double TotalMs() const {
        const double end =
            serialize_end_us > 0.0 ? serialize_end_us : score_end_us;
        return end > submit_us ? (end - submit_us) / 1000.0 : 0.0;
    }
};

/// Small stable integer id for the calling thread (first call assigns).
std::uint64_t CompressedThreadId();

/// Bounded lock-free ring of completed request traces. Push() overwrites the
/// oldest entries once full; Dump() returns surviving traces oldest-first,
/// skipping any slot caught mid-write (per-slot seqlock, no reader lock).
class TraceRing {
  public:
    /// `capacity` is rounded up to a power of two (minimum 2).
    explicit TraceRing(std::size_t capacity);

    void Push(const RequestTrace& trace);
    std::vector<RequestTrace> Dump() const;

    std::uint64_t total_pushed() const {
        return next_.load(std::memory_order_relaxed);
    }
    std::size_t capacity() const { return mask_ + 1; }

  private:
    static constexpr std::size_t kWords =
        (sizeof(RequestTrace) + sizeof(std::uint64_t) - 1) /
        sizeof(std::uint64_t);

    struct Slot {
        /// Seqlock: odd while a writer owns the slot, even when stable.
        std::atomic<std::uint64_t> seq{0};
        /// Payload stored as relaxed atomic words (copied via memcpy on both
        /// sides): lapping writers and in-flight readers may touch a slot
        /// concurrently, and the seqlock only discards the *values* — the
        /// accesses themselves must be data-race-free for TSan/the memory
        /// model. Word-sized relaxed atomics keep Push lock-free.
        std::array<std::atomic<std::uint64_t>, kWords> words{};
    };

    static void StoreTrace(Slot& slot, const RequestTrace& trace);
    static RequestTrace LoadTrace(const Slot& slot);

    std::unique_ptr<Slot[]> slots_;
    std::size_t mask_ = 0;
    std::atomic<std::uint64_t> next_{0};
};

/// Renders traces as a Chrome trace-event JSON document:
///   {"traceEvents":[{"name":"queue","ph":"X","ts":...,"dur":...,
///                    "pid":1,"tid":...,"args":{"req":...,"batch":...}},...]}
/// One complete ("X") event per recorded stage; timestamps/durations are in
/// microseconds as the format requires. Zero-length stages are kept (dur 0)
/// so every request shows its full path.
std::string RenderChromeTrace(const std::vector<RequestTrace>& traces);

/// Logs requests slower than `threshold_ms` (total latency) with their
/// per-stage breakdown, rate-limited to one log line per `min_interval_ms`
/// so a latency storm cannot drown the log. Always counts into the
/// `dfp.serve.slow_requests` counter regardless of rate limiting.
class SlowRequestSampler {
  public:
    explicit SlowRequestSampler(double threshold_ms,
                                double min_interval_ms = 100.0)
        : threshold_ms_(threshold_ms), min_interval_ms_(min_interval_ms) {}

    bool enabled() const { return threshold_ms_ >= 0.0; }
    /// Returns true when the trace was over threshold (logged or not).
    bool Sample(const RequestTrace& trace);

  private:
    double threshold_ms_;
    double min_interval_ms_;
    std::atomic<double> last_log_us_{-1e18};
};

}  // namespace dfp::obs
