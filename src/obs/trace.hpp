// Scoped trace spans: RAII guards that build a nested wall-clock timing tree
// (train → mine[per-class] → pool/dedup → mmrfs → transform → learn).
//
// Collection is opt-in via EnableTracing(true). When disabled a Span is two
// steady_clock reads and nothing else — no allocation, no tree mutation — so
// instrumented library code costs nothing in production paths. The span stack
// is thread-local; each thread builds its own tree.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"

namespace dfp::obs {

/// One completed (or in-flight) node of the timing tree.
struct SpanNode {
    std::string name;
    double seconds = 0.0;
    /// Scalar facts attached while the span was open (counts, sizes).
    std::vector<std::pair<std::string, double>> annotations;
    std::vector<std::unique_ptr<SpanNode>> children;

    /// Total nodes in this subtree, including this one.
    std::size_t TreeSize() const {
        std::size_t n = 1;
        for (const auto& c : children) n += c->TreeSize();
        return n;
    }
};

/// Globally enables/disables span collection (default: off).
void EnableTracing(bool enabled);
bool TracingEnabled();

/// Per-thread collector of completed span trees.
class Tracer {
  public:
    /// This thread's tracer.
    static Tracer& Get();

    /// Opens a child of the innermost open span (or a new root). Returns the
    /// node; the caller must close it with EndSpan in LIFO order.
    SpanNode* BeginSpan(std::string name);
    void EndSpan(SpanNode* node, double seconds);

    /// Roots completed on this thread, in completion order.
    const std::vector<std::unique_ptr<SpanNode>>& roots() const { return roots_; }
    /// Moves all completed roots out (leaves the tracer empty).
    std::vector<std::unique_ptr<SpanNode>> TakeRoots();
    /// Number of currently open spans.
    std::size_t depth() const { return stack_.size(); }
    /// Drops completed roots; open spans are unaffected.
    void Clear() { roots_.clear(); }

  private:
    std::vector<std::unique_ptr<SpanNode>> roots_;
    /// Owns in-flight roots until they complete and move to roots_.
    std::vector<std::unique_ptr<SpanNode>> pending_roots_;
    std::vector<SpanNode*> stack_;
};

/// RAII span guard. Always measures elapsed time (so callers can reuse it for
/// plain timing); records a SpanNode only while tracing is enabled.
class Span {
  public:
    explicit Span(std::string_view name);
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attaches a scalar fact to this span (no-op when tracing is disabled).
    void Annotate(std::string_view key, double value);

    /// Seconds since construction; usable whether or not tracing is enabled.
    double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

  private:
    SpanNode* node_ = nullptr;  // null when tracing was off at construction
    Stopwatch watch_;
};

}  // namespace dfp::obs
