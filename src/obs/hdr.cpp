#include "obs/hdr.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace dfp::obs {

namespace {

std::int64_t NowSteadyNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::size_t RoundUpPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Round-robin shard slot per thread: the first histogram touch on a thread
/// claims the next slot, so K threads spread evenly over K shards instead of
/// relying on thread-id hash luck.
std::size_t ThreadShardSlot() {
    static std::atomic<std::size_t> next_slot{0};
    thread_local const std::size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

}  // namespace

HdrLayout HdrLayout::FromConfig(const HdrConfig& config) {
    HdrLayout layout;
    layout.min_value = config.min_value > 0.0 ? config.min_value : 1e-3;
    layout.subbuckets = std::max<std::size_t>(2, config.subbuckets_per_octave);
    const double max_value = std::max(config.max_value, layout.min_value * 2.0);
    layout.num_octaves = static_cast<std::size_t>(
        std::ceil(std::log2(max_value / layout.min_value)));
    layout.num_octaves = std::max<std::size_t>(1, layout.num_octaves);
    layout.num_buckets = layout.num_octaves * layout.subbuckets;
    return layout;
}

std::size_t HdrLayout::IndexFor(double v) const {
    // NaN, negatives and anything at or below min_value clamp into bucket 0.
    if (!(v > min_value)) return 0;
    const double scaled = v / min_value;  // > 1
    int exp = 0;
    const double mantissa = std::frexp(scaled, &exp);  // scaled = m * 2^exp
    // scaled in [2^(exp-1), 2^exp)  =>  octave exp-1, offset 2*m - 1 in [0,1).
    const std::size_t octave = static_cast<std::size_t>(exp - 1);
    const double offset = 2.0 * mantissa - 1.0;
    std::size_t sub = static_cast<std::size_t>(
        offset * static_cast<double>(subbuckets));
    sub = std::min(sub, subbuckets - 1);
    return std::min(octave * subbuckets + sub, num_buckets - 1);
}

double HdrLayout::LowerBound(std::size_t idx) const {
    const std::size_t octave = idx / subbuckets;
    const std::size_t sub = idx % subbuckets;
    const double base = std::ldexp(min_value, static_cast<int>(octave));
    return base * (1.0 + static_cast<double>(sub) /
                             static_cast<double>(subbuckets));
}

double HdrLayout::Width(std::size_t idx) const {
    const std::size_t octave = idx / subbuckets;
    return std::ldexp(min_value, static_cast<int>(octave)) /
           static_cast<double>(subbuckets);
}

double HdrSnapshot::ValueAtQuantile(double q) const {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i];
        if (cumulative >= target) return layout.Representative(i);
    }
    return layout.Representative(counts.size() - 1);
}

void HdrSnapshot::MergeFrom(const HdrSnapshot& other) {
    if (!layout.SameShapeAs(other.layout) ||
        counts.size() != other.counts.size()) {
        return;  // shape mismatch: caller error, nothing sane to merge
    }
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
}

HdrHistogram::HdrHistogram(HdrConfig config)
    : layout_(HdrLayout::FromConfig(config)) {
    std::size_t shards = config.shards;
    if (shards == 0) {
        shards = std::min<std::size_t>(
            16, std::max<unsigned>(1, std::thread::hardware_concurrency()));
    }
    shards = RoundUpPow2(shards);
    shard_mask_ = shards - 1;
    shards_ = std::vector<Shard>(shards);
    for (Shard& shard : shards_) {
        shard.counts =
            std::vector<std::atomic<std::uint64_t>>(layout_.num_buckets);
    }
}

void HdrHistogram::Record(double v) {
    Shard& shard = shards_[ThreadShardSlot() & shard_mask_];
    shard.counts[layout_.IndexFor(v)].fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(shard.sum, v);
}

HdrSnapshot HdrHistogram::Snapshot() const {
    HdrSnapshot snap;
    snap.layout = layout_;
    snap.counts.assign(layout_.num_buckets, 0);
    double sum = 0.0;
    for (const Shard& shard : shards_) {
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
            snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
        }
        sum += shard.sum.load(std::memory_order_relaxed);
    }
    std::uint64_t count = 0;
    for (const std::uint64_t c : snap.counts) count += c;
    snap.count = count;
    // `sum` is tracked independently of the buckets; clamp the obviously
    // torn states (reset races) instead of reporting nonsense.
    snap.sum = (count == 0 || sum < 0.0) ? 0.0 : sum;
    return snap;
}

void HdrHistogram::Reset() {
    for (Shard& shard : shards_) {
        for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
        shard.sum.store(0.0, std::memory_order_relaxed);
    }
}

WindowedHdrHistogram::WindowedHdrHistogram(HdrConfig config, std::size_t epochs,
                                           double epoch_seconds)
    : epoch_seconds_(std::max(1e-3, epoch_seconds)),
      last_rotate_ns_(NowSteadyNs()) {
    epochs = std::max<std::size_t>(2, epochs);
    ring_.reserve(epochs);
    for (std::size_t i = 0; i < epochs; ++i) {
        ring_.push_back(std::make_unique<HdrHistogram>(config));
    }
}

void WindowedHdrHistogram::Record(double v) {
    ring_[current_.load(std::memory_order_acquire)]->Record(v);
}

HdrSnapshot WindowedHdrHistogram::TrailingSnapshot() const {
    HdrSnapshot merged = ring_.front()->Snapshot();
    for (std::size_t i = 1; i < ring_.size(); ++i) {
        merged.MergeFrom(ring_[i]->Snapshot());
    }
    return merged;
}

HdrSnapshot WindowedHdrHistogram::CurrentEpochSnapshot() const {
    return ring_[current_.load(std::memory_order_acquire)]->Snapshot();
}

void WindowedHdrHistogram::Rotate() {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    const std::size_t next =
        (current_.load(std::memory_order_relaxed) + 1) % ring_.size();
    ring_[next]->Reset();
    current_.store(next, std::memory_order_release);
    last_rotate_ns_.store(NowSteadyNs(), std::memory_order_relaxed);
}

bool WindowedHdrHistogram::RotateIfDue() {
    const auto epoch_ns =
        static_cast<std::int64_t>(epoch_seconds_ * 1e9);
    if (NowSteadyNs() - last_rotate_ns_.load(std::memory_order_relaxed) <
        epoch_ns) {
        return false;
    }
    std::lock_guard<std::mutex> lock(rotate_mu_);
    // Re-check under the lock: a concurrent flusher may have just rotated.
    if (NowSteadyNs() - last_rotate_ns_.load(std::memory_order_relaxed) <
        epoch_ns) {
        return false;
    }
    const std::size_t next =
        (current_.load(std::memory_order_relaxed) + 1) % ring_.size();
    ring_[next]->Reset();
    current_.store(next, std::memory_order_release);
    last_rotate_ns_.store(NowSteadyNs(), std::memory_order_relaxed);
    return true;
}

void WindowedHdrHistogram::Reset() {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    for (auto& epoch : ring_) epoch->Reset();
    last_rotate_ns_.store(NowSteadyNs(), std::memory_order_relaxed);
}

WindowFlusher::WindowFlusher(std::vector<WindowedHdrHistogram*> targets,
                             double period_seconds)
    : targets_(std::move(targets)) {
    const auto period = std::chrono::duration<double>(
        std::max(1e-3, period_seconds));
    thread_ = std::thread([this, period] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
            cv_.wait_for(lock, period, [this] { return stop_; });
            if (stop_) return;
            lock.unlock();
            for (WindowedHdrHistogram* target : targets_) target->RotateIfDue();
            lock.lock();
        }
    });
}

WindowFlusher::~WindowFlusher() { Stop(); }

void WindowFlusher::Stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

}  // namespace dfp::obs
