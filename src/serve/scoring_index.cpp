#include "serve/scoring_index.hpp"

#include <algorithm>
#include <limits>

namespace dfp::serve {

PatternMatchIndex PatternMatchIndex::Build(const FeatureSpace& space) {
    PatternMatchIndex index;
    index.num_items_ = space.num_items();
    const auto& patterns = space.patterns();
    index.pattern_len_.reserve(patterns.size());
    for (const Pattern& p : patterns) {
        index.pattern_len_.push_back(static_cast<std::uint32_t>(p.items.size()));
    }
    // Counting pass, then prefix sums, then a placement pass — the classic
    // two-pass CSR build. Postings within an item stay in pattern-id order.
    index.offsets_.assign(index.num_items_ + 1, 0);
    for (const Pattern& p : patterns) {
        for (ItemId item : p.items) ++index.offsets_[item + 1];
    }
    for (std::size_t i = 0; i < index.num_items_; ++i) {
        index.offsets_[i + 1] += index.offsets_[i];
    }
    index.postings_.resize(index.offsets_.back());
    std::vector<std::uint32_t> cursor(index.offsets_.begin(),
                                      index.offsets_.end() - 1);
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        for (ItemId item : patterns[p].items) {
            index.postings_[cursor[item]++] = static_cast<std::uint32_t>(p);
        }
    }
    return index;
}

void PatternMatchIndex::InitScratch(Scratch* scratch) const {
    const std::size_t n = num_patterns();
    if (scratch->hits.size() != n) {
        scratch->hits.assign(n, 0);
        scratch->stamp.assign(n, 0);
        scratch->generation = 0;
    }
    if (scratch->encoded.size() != dim()) scratch->encoded.assign(dim(), 0.0);
}

void PatternMatchIndex::MatchInto(const std::vector<ItemId>& transaction,
                                  Scratch* scratch) const {
    scratch->matched.clear();
    if (scratch->generation == std::numeric_limits<std::uint32_t>::max()) {
        // Generation wrap: one real clear every 2^32 - 1 calls.
        std::fill(scratch->stamp.begin(), scratch->stamp.end(), 0);
        scratch->generation = 0;
    }
    const std::uint32_t gen = ++scratch->generation;
    for (ItemId item : transaction) {
        if (item >= num_items_) continue;  // no postings, mirrors Encode
        const std::uint32_t begin = offsets_[item];
        const std::uint32_t end = offsets_[item + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t p = postings_[k];
            std::uint32_t hits;
            if (scratch->stamp[p] != gen) {
                scratch->stamp[p] = gen;
                hits = scratch->hits[p] = 1;
            } else {
                hits = ++scratch->hits[p];
            }
            // A sorted duplicate-free transaction touches each pattern item
            // once, so the counter reaches the length exactly when the whole
            // pattern is contained.
            if (hits == pattern_len_[p]) scratch->matched.push_back(p);
        }
    }
}

void PatternMatchIndex::EncodeInto(const std::vector<ItemId>& transaction,
                                   Scratch* scratch) const {
    InitScratch(scratch);
    std::fill(scratch->encoded.begin(), scratch->encoded.end(), 0.0);
    for (ItemId item : transaction) {
        if (item < num_items_) scratch->encoded[item] = 1.0;
    }
    MatchInto(transaction, scratch);
    for (std::uint32_t p : scratch->matched) {
        scratch->encoded[num_items_ + p] = 1.0;
    }
}

}  // namespace dfp::serve
