#include "serve/server.hpp"

#include <chrono>

#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"

namespace dfp::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

std::string RequestDispatcher::HandleLine(std::string_view line) {
    auto parsed = ParseServeRequest(line);
    if (!parsed.ok()) {
        obs::Registry::Get().GetCounter("dfp.serve.protocol_errors").Inc();
        return RenderErrorResponse(nullptr, parsed.status());
    }
    const ServeRequest& request = *parsed;
    switch (request.op) {
        case ServeOp::kPredict:
            return HandlePredict(request);
        case ServeOp::kPredictBatch:
            return HandlePredictBatch(request);
        case ServeOp::kStats:
            return RenderStatsResponse(request, obs::Registry::Get().Snapshot());
        case ServeOp::kReload:
            return HandleReload(request);
        case ServeOp::kHealth:
            return RenderHealthResponse(request,
                                        registry_.current_version() != 0,
                                        registry_.current_version(), draining());
        case ServeOp::kReady:
            return RenderReadyResponse(request, Ready(),
                                       registry_.current_version());
        case ServeOp::kMetrics:
            // The same pure render the HTTP side-port uses — the two payloads
            // are identical by construction (tested in telemetry_test).
            return RenderMetricsResponse(
                request, obs::RenderPrometheus(obs::Registry::Get().Snapshot()));
        case ServeOp::kTraceDump:
            return RenderTraceDumpResponse(
                request, obs::RenderChromeTrace(engine_.trace_ring().Dump()));
    }
    return RenderErrorResponse(&request, Status::Internal("unhandled op"));
}

std::string RequestDispatcher::HandlePredict(const ServeRequest& request) {
    // The trace lives on this stack frame across the engine's thread hops;
    // Submit's contract guarantees the engine stops writing it strictly
    // before the future becomes ready.
    obs::RequestTrace trace;
    Result<Prediction> prediction =
        engine_
            .Submit(request.batch.front(), request.deadline_ms,
                    /*cancel=*/nullptr, &trace)
            .get();
    std::string response;
    trace.serialize_start_us = obs::NowMicros();
    if (prediction.ok()) {
        response = RenderPredictResponse(request, *prediction, trace.TotalMs());
    } else {
        response = RenderErrorResponse(&request, prediction.status());
    }
    trace.serialize_end_us = obs::NowMicros();
    engine_.CommitTrace(trace);
    return response;
}

std::string RequestDispatcher::HandlePredictBatch(const ServeRequest& request) {
    const auto start = Clock::now();
    auto predictions = engine_.PredictBatch(request.batch);
    if (!predictions.ok()) {
        return RenderErrorResponse(&request, predictions.status());
    }
    return RenderPredictBatchResponse(request, *predictions, MsSince(start));
}

std::string RequestDispatcher::HandleReload(const ServeRequest& request) {
    const std::string& path =
        request.path.empty() ? default_model_path_ : request.path;
    if (path.empty()) {
        return RenderErrorResponse(
            &request, Status::InvalidArgument(
                          "reload needs a \"path\" (no default configured)"));
    }
    auto reloaded = registry_.Reload(path);
    if (!reloaded.ok()) return RenderErrorResponse(&request, reloaded.status());
    return RenderReloadResponse(request, (*reloaded)->version);
}

PredictionServer::PredictionServer(ModelRegistry& registry, ScoringEngine& engine,
                                   ServerConfig config,
                                   std::string default_model_path)
    : dispatcher_(registry, engine, std::move(default_model_path)),
      config_(config) {}

PredictionServer::~PredictionServer() { Stop(); }

Status PredictionServer::Start() {
    auto listener = TcpListen(config_.port);
    if (!listener.ok()) return listener.status();
    listener_ = std::move(*listener);
    auto port = LocalPort(listener_);
    if (!port.ok()) return port.status();
    port_ = *port;
    if (config_.metrics_port >= 0) {
        obs::MetricsHttpConfig http;
        http.port = static_cast<std::uint16_t>(config_.metrics_port);
        // `GET /healthz` answers 503 until a model is installed and 503
        // again once draining starts — load balancers stop routing before
        // the drain cuts connections.
        http.ready_check = [this] { return dispatcher_.Ready(); };
        metrics_http_ = std::make_unique<obs::MetricsHttpServer>(http);
        const Status st = metrics_http_->Start();
        if (!st.ok()) {
            metrics_http_.reset();
            listener_.Close();
            return st;
        }
        DFP_LOG_INFO(StrFormat("dfp_serve: metrics on 127.0.0.1:%u/metrics",
                               unsigned{metrics_http_->port()}));
    }
    acceptor_ = std::thread([this] { AcceptLoop(); });
    DFP_LOG_INFO(StrFormat("dfp_serve: listening on 127.0.0.1:%u", unsigned{port_}));
    return Status::Ok();
}

std::uint16_t PredictionServer::metrics_port() const {
    return metrics_http_ != nullptr ? metrics_http_->port() : 0;
}

void PredictionServer::Stop() {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopping_.exchange(true)) return;  // idempotent; serialized by stop_mu_
    dispatcher_.SetDraining(true);
    // 1. Stop accepting: shutdown unblocks accept() with EINVAL.
    listener_.ShutdownBoth();
    if (acceptor_.joinable()) acceptor_.join();
    // 2. Unblock idle connection readers. Handlers mid-request are not
    //    interrupted: SHUT_RD only EOFs *reads*, so the response of any
    //    request already being processed still flushes before the handler
    //    sees EOF and exits.
    {
        std::lock_guard<std::mutex> lock(connections_mu_);
        for (auto& connection : connections_) {
            connection->socket.ShutdownRead();
        }
    }
    // 3. Join handlers (each finishes its in-flight request first).
    std::vector<std::unique_ptr<Connection>> done;
    {
        std::lock_guard<std::mutex> lock(connections_mu_);
        done.swap(connections_);
    }
    for (auto& connection : done) {
        if (connection->thread.joinable()) connection->thread.join();
    }
    listener_.Close();
    if (metrics_http_ != nullptr) metrics_http_->Stop();
}

void PredictionServer::AcceptLoop() {
    auto& registry = obs::Registry::Get();
    for (;;) {
        auto accepted = TcpAccept(listener_);
        if (stopping_.load(std::memory_order_relaxed)) return;
        if (!accepted.ok()) {
            // Only "listener closed" ends the loop. Everything else —
            // ECONNABORTED, fd exhaustion, injected accept faults — kills at
            // most that one connection; the server must keep accepting
            // (an accept loop that exits on a transient error is an outage).
            if (accepted.status().code() == StatusCode::kUnavailable) return;
            registry.GetCounter("dfp.serve.accept_errors").Inc();
            continue;
        }
        registry.GetCounter("dfp.serve.connections").Inc();
        if (active_connections_.load(std::memory_order_relaxed) >=
            config_.max_connections) {
            // Connection-level shedding: answer once, close, never spawn.
            registry.GetCounter("dfp.serve.connections_shed").Inc();
            accepted->SendAll(
                RenderErrorResponse(
                    nullptr, Status::Unavailable("connection limit reached")) +
                "\n");
            continue;  // Socket destructor closes
        }
        active_connections_.fetch_add(1, std::memory_order_relaxed);
        ReapFinishedConnections();
        auto connection = std::make_unique<Connection>();
        connection->socket = std::move(*accepted);
        Connection* raw = connection.get();
        {
            std::lock_guard<std::mutex> lock(connections_mu_);
            connection->thread =
                std::thread([this, raw] { HandleConnection(raw); });
            connections_.push_back(std::move(connection));
        }
    }
}

void PredictionServer::ReapFinishedConnections() {
    // Joins handler threads whose connection has ended, so a long-running
    // server doesn't accumulate one zombie thread per past connection.
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
            if ((*it)->thread.joinable()) (*it)->thread.join();
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void PredictionServer::HandleConnection(Connection* connection) {
    auto& registry = obs::Registry::Get();
    if (config_.read_timeout_s > 0.0) {
        (void)connection->socket.SetRecvTimeout(config_.read_timeout_s);
    }
    if (config_.write_timeout_s > 0.0) {
        (void)connection->socket.SetSendTimeout(config_.write_timeout_s);
    }
    LineReader reader(connection->socket);
    std::string line;
    for (;;) {
        auto got = reader.ReadLine(&line, config_.max_line_bytes);
        if (!got.ok()) {
            if (got.status().code() == StatusCode::kInvalidArgument) {
                // Oversized request line: the buffer is bounded, so tell the
                // client why before dropping it (nothing of the line was
                // dispatched, so one error response is unambiguous).
                registry.GetCounter("dfp.serve.oversized_lines").Inc();
                (void)connection->socket.SendAll(
                    RenderErrorResponse(nullptr, got.status()) + "\n");
            } else if (got.status().code() == StatusCode::kUnavailable) {
                // Read deadline expired (slow-loris or an idle client under
                // read_timeout_s): reclaim the handler thread.
                registry.GetCounter("dfp.serve.conn_timeouts").Inc();
            }
            break;
        }
        if (!*got) break;  // clean EOF
        if (line.empty()) continue;
        if (const auto fp = DFP_FAILPOINT("serve.conn.handle"); fp) {
            fp.Sleep();
            if (fp.kind != FailpointKind::kDelay) {
                // Simulated handler crash: drop the connection without a
                // response — the client sees a transport error, never a
                // half-frame, and may safely retry.
                registry.GetCounter("dfp.serve.conn_faults").Inc();
                break;
            }
        }
        const std::string response = dispatcher_.HandleLine(line);
        const Status sent = connection->socket.SendAll(response + "\n");
        if (!sent.ok()) {
            if (sent.code() == StatusCode::kUnavailable) {
                registry.GetCounter("dfp.serve.conn_timeouts").Inc();
            }
            break;
        }
        if (stopping_.load(std::memory_order_relaxed)) break;
    }
    connection->socket.ShutdownBoth();
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    connection->finished.store(true, std::memory_order_release);
}

}  // namespace dfp::serve
