// Micro-batched scoring engine with admission control.
//
// The serving front-end (TCP handlers, the in-process client) submits single
// transactions; the engine coalesces whatever is concurrently pending into
// micro-batches (up to max_batch requests, waiting at most max_delay_ms for
// stragglers) and fans each batch out over the work-stealing ThreadPool.
// Batching amortizes queue/wake overhead; the per-request unit of work stays
// one inverted-index match plus one learner evaluation, so results are
// independent of batch composition — predictions are bit-identical to
// LoadedModel::Predict at every batch size and thread count.
//
// Admission control (DESIGN.md §13):
//  * Bounded queue. Submit() on a full queue sheds immediately with
//    kUnavailable (counted in dfp.serve.shed) instead of building an
//    unbounded backlog — the client's cue to back off.
//  * Per-request deadlines reuse the budget primitives (DeadlineTimer
//    anchored at submit, optional CancelToken): a request whose deadline
//    passed while queued is answered kCancelled without being scored.
//  * Graceful drain. Stop() refuses new work (kUnavailable) but scores
//    everything already admitted before returning — an accepted request is
//    never dropped.
//
// Every stage publishes dfp.serve.* metrics; batch scoring runs under a
// "serve.batch" trace span.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.hpp"
#include "common/parallel.hpp"
#include "common/status.hpp"
#include "obs/hdr.hpp"
#include "obs/reqtrace.hpp"
#include "serve/registry.hpp"

namespace dfp::serve {

/// Live-serving telemetry knobs (DESIGN.md §14).
struct TelemetryConfig {
    /// Completed request traces retained for {"op":"trace_dump"} and
    /// `dfp_serve --trace-out` (bounded ring; oldest overwritten).
    std::size_t trace_ring_capacity = 4096;
    /// Requests slower than this many milliseconds end to end are logged
    /// with their per-stage breakdown (rate-limited); < 0 disables.
    double slow_request_ms = -1.0;
    /// Trailing-window geometry of the dfp.serve.latency.* quantiles: a ring
    /// of `window_epochs` HDR shards, one rotated out every
    /// `window_epoch_seconds` (defaults: 10 s trailing window).
    std::size_t window_epochs = 8;
    double window_epoch_seconds = 1.25;
    /// Spawn the background window flusher. Disabled automatically in
    /// manual_pump mode; tests rotate by hand for determinism.
    bool background_flush = true;
};

struct EngineConfig {
    /// Largest micro-batch handed to the pool in one go.
    std::size_t max_batch = 64;
    /// How long a non-full batch waits for stragglers once the first request
    /// is pending. 0 = dispatch immediately.
    double max_delay_ms = 0.5;
    /// Admission bound: Submit() sheds with kUnavailable beyond this.
    std::size_t queue_capacity = 1024;
    /// Scoring workers (0 = hardware_concurrency, 1 = score on the batcher
    /// thread — the serial path).
    std::size_t num_threads = 1;
    /// Deadline applied to requests that don't carry their own (< 0 = none).
    double default_deadline_ms = -1.0;
    /// Test seam: no batcher thread is spawned; tests call PumpOnce() to
    /// process one micro-batch deterministically.
    bool manual_pump = false;
    TelemetryConfig telemetry;
};

/// One scored request: the label plus the model version that produced it.
struct Prediction {
    ClassLabel label = 0;
    std::uint64_t model_version = 0;
};

class ScoringEngine {
  public:
    ScoringEngine(ModelRegistry& registry, EngineConfig config);
    ScoringEngine(const ScoringEngine&) = delete;
    ScoringEngine& operator=(const ScoringEngine&) = delete;
    /// Stops and drains (see Stop()).
    ~ScoringEngine();

    /// Enqueues one transaction for micro-batched scoring. `items` need not
    /// be sorted — the engine canonicalizes (sort + dedup). The future is
    /// always eventually satisfied: with a Prediction, or with kUnavailable
    /// (shed / stopped), kCancelled (deadline or token), or
    /// kFailedPrecondition (no model installed).
    ///
    /// `trace`, when non-null, is stamped across the request's thread hops
    /// (submit/dequeue/score). It must stay alive until the future is ready
    /// (the dispatcher keeps it on its stack while blocked on get()); the
    /// engine stops touching it strictly before fulfilling the promise. A
    /// caller passing a trace owns committing it (CommitTrace) after adding
    /// its serialize timestamps; requests submitted without one are traced
    /// and committed internally.
    std::future<Result<Prediction>> Submit(std::vector<ItemId> items,
                                           double deadline_ms = -1.0,
                                           CancelToken* cancel = nullptr,
                                           obs::RequestTrace* trace = nullptr);

    /// Submit + wait. Do not call in manual_pump mode (nothing would pump).
    Result<Prediction> Predict(std::vector<ItemId> items,
                               double deadline_ms = -1.0);

    /// Scores a whole batch directly against the current snapshot, bypassing
    /// the admission queue (the predict_batch protocol op and offline eval).
    Result<std::vector<Prediction>> PredictBatch(
        std::vector<std::vector<ItemId>> batch) const;

    /// Graceful drain: new Submits are refused with kUnavailable, every
    /// already-queued request is scored, then the batcher joins. Idempotent.
    void Stop();

    bool stopped() const;
    /// Current queue depth (tests / stats).
    std::size_t queue_depth() const;

    /// manual_pump mode: processes at most one micro-batch on the calling
    /// thread; returns the number of requests handled.
    std::size_t PumpOnce();

    const EngineConfig& config() const { return config_; }

    /// Completed request traces (bounded; see TelemetryConfig).
    const obs::TraceRing& trace_ring() const { return trace_ring_; }

    /// Pushes a finished trace into the ring, samples it for slow-request
    /// logging, and records its serialize stage (if stamped) into
    /// dfp.serve.latency.serialize. Called internally for engine-traced
    /// requests and by RequestDispatcher for protocol requests.
    void CommitTrace(const obs::RequestTrace& trace);

  private:
    struct PendingRequest {
        std::vector<ItemId> items;
        DeadlineTimer deadline;
        CancelToken* cancel = nullptr;
        std::promise<Result<Prediction>> promise;
        std::chrono::steady_clock::time_point enqueued;
        /// Dispatcher-owned trace (engine must not touch it after the
        /// promise is fulfilled), or null to use `trace` below.
        obs::RequestTrace* external_trace = nullptr;
        obs::RequestTrace trace;

        obs::RequestTrace* trace_target() {
            return external_trace != nullptr ? external_trace : &trace;
        }
    };

    void BatcherLoop();
    /// Takes up to max_batch requests off the queue (call with mu_ held is
    /// NOT required; it locks internally). Returns an empty vector when the
    /// queue was empty.
    std::vector<PendingRequest> TakeBatch();
    std::size_t ProcessBatch(std::vector<PendingRequest> batch);
    void ScoreRange(const ServablePtr& snapshot,
                    std::vector<PendingRequest>& batch, std::size_t begin,
                    std::size_t end);

    /// Records one request's stage durations into the windowed latency
    /// histograms and the fixed-bucket total-latency histogram.
    void RecordStageLatencies(const obs::RequestTrace& trace);

    ModelRegistry& registry_;
    EngineConfig config_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when scoring runs serial

    // Telemetry. The windowed histograms are registry-owned (immortal);
    // the engine only resolves them once and drives rotation.
    obs::TraceRing trace_ring_;
    obs::SlowRequestSampler slow_sampler_;
    obs::WindowedHdrHistogram* win_total_ = nullptr;
    obs::WindowedHdrHistogram* win_queue_ = nullptr;
    obs::WindowedHdrHistogram* win_batch_wait_ = nullptr;
    obs::WindowedHdrHistogram* win_score_ = nullptr;
    obs::WindowedHdrHistogram* win_serialize_ = nullptr;
    std::unique_ptr<obs::WindowFlusher> flusher_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<PendingRequest> queue_;
    bool stopping_ = false;
    std::thread batcher_;
};

}  // namespace dfp::serve
