// The prediction server: a protocol dispatcher plus a blocking-socket TCP
// front (thread per connection, bounded).
//
// RequestDispatcher is the transport-free core — one request line in, one
// response line out — shared by the TCP handlers, the in-process ServeClient,
// and the protocol golden tests. PredictionServer adds the listener, the
// per-connection handler threads, connection-level admission control
// (connections beyond max_connections are answered with a kUnavailable line
// and closed), and graceful drain: Stop() stops accepting, unblocks idle
// readers, lets every in-flight request finish and its response flush, then
// joins all threads. Responses in flight are never cut off.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.hpp"
#include "common/status.hpp"
#include "obs/export.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace dfp::serve {

/// Transport-agnostic protocol handler. Thread-safe: handlers on different
/// connections dispatch concurrently.
class RequestDispatcher {
  public:
    RequestDispatcher(ModelRegistry& registry, ScoringEngine& engine,
                      std::string default_model_path = "")
        : registry_(registry),
          engine_(engine),
          default_model_path_(std::move(default_model_path)) {}

    /// Handles one request line; always returns exactly one response line
    /// (without trailing '\n'), errors included.
    std::string HandleLine(std::string_view line);

    /// Health responses report "draining": true once set (server Stop()).
    void SetDraining(bool draining) {
        draining_.store(draining, std::memory_order_relaxed);
    }
    bool draining() const { return draining_.load(std::memory_order_relaxed); }

    /// Readiness predicate shared by the `ready` op and `GET /healthz`:
    /// a model is installed and the server is not draining.
    bool Ready() const {
        return !draining() && registry_.current_version() != 0;
    }

  private:
    std::string HandlePredict(const ServeRequest& request);
    std::string HandlePredictBatch(const ServeRequest& request);
    std::string HandleReload(const ServeRequest& request);

    ModelRegistry& registry_;
    ScoringEngine& engine_;
    std::string default_model_path_;
    std::atomic<bool> draining_{false};
};

struct ServerConfig {
    /// 0 = kernel-assigned ephemeral port (tests); read back with port().
    std::uint16_t port = 7070;
    /// Connection-level admission bound.
    std::size_t max_connections = 64;
    /// Metrics side-port for `GET /metrics` scrapes (obs::MetricsHttpServer):
    /// -1 = disabled, 0 = ephemeral (read back with metrics_port()), else the
    /// literal port. Scrapers never consume prediction connection slots.
    int metrics_port = -1;
    /// Per-connection socket deadlines (seconds; 0 = none). The slow-loris
    /// defense: a client that trickles request bytes (read) or stops draining
    /// its response (write) is disconnected instead of pinning a handler
    /// thread; timeouts are counted in `dfp.serve.conn_timeouts`.
    double read_timeout_s = 0.0;
    double write_timeout_s = 0.0;
    /// Per-line request size bound; an oversized line gets one kInvalidArgument
    /// response and the connection is closed (the buffer never grows past it).
    std::size_t max_line_bytes = LineReader::kDefaultMaxLineBytes;
};

class PredictionServer {
  public:
    /// The registry/engine are borrowed (the owner wires model loading and
    /// engine policy); the server only adds the TCP front.
    PredictionServer(ModelRegistry& registry, ScoringEngine& engine,
                     ServerConfig config, std::string default_model_path = "");
    PredictionServer(const PredictionServer&) = delete;
    PredictionServer& operator=(const PredictionServer&) = delete;
    ~PredictionServer();

    /// Binds, listens and spawns the acceptor. Fails if the port is taken.
    Status Start();

    /// Graceful drain; idempotent. Does NOT stop the engine — the owner
    /// decides (the engine may serve an in-process client too).
    void Stop();

    /// Bound port (valid after Start; useful with config.port == 0).
    std::uint16_t port() const { return port_; }

    /// Bound metrics side-port, or 0 when disabled.
    std::uint16_t metrics_port() const;

    RequestDispatcher& dispatcher() { return dispatcher_; }

  private:
    struct Connection {
        Socket socket;
        std::thread thread;
        std::atomic<bool> finished{false};
    };

    void AcceptLoop();
    void HandleConnection(Connection* connection);
    void ReapFinishedConnections();

    RequestDispatcher dispatcher_;
    ServerConfig config_;
    Socket listener_;
    std::unique_ptr<obs::MetricsHttpServer> metrics_http_;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    std::mutex stop_mu_;  ///< serializes Stop() callers
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> active_connections_{0};

    std::mutex connections_mu_;
    std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace dfp::serve
