// Compiled pattern-matching index for the serving hot path.
//
// FeatureSpace::Encode tests every pattern against the transaction with
// std::includes — O(|Fs| × pattern length) per prediction, fine offline but
// the dominant cost online. PatternMatchIndex compiles the feature space once
// into an inverted item → pattern-id index (CSR layout) with per-pattern hit
// counters, so matching is O(items-in-txn × avg postings): walk the
// transaction, bump the counter of every pattern containing each item, and a
// pattern matches exactly when its counter reaches its length.
//
// The encodings produced are *bit-identical* to FeatureSpace::Encode for any
// sorted duplicate-free transaction (certified by the dfp_serve equivalence
// suite), so a learner sees exactly the vectors it would see offline.
//
// The index itself is immutable after Build and safe to share across threads;
// all per-call state lives in a caller-owned Scratch (one per worker).
#pragma once

#include <cstdint>
#include <vector>

#include "core/feature_space.hpp"

namespace dfp::serve {

class PatternMatchIndex {
  public:
    /// Per-thread matching state. Counters are invalidated lazily via a
    /// generation stamp, so consecutive matches never pay an O(|Fs|) clear.
    struct Scratch {
        std::vector<std::uint32_t> hits;     ///< per-pattern item hits
        std::vector<std::uint32_t> stamp;    ///< generation of `hits[p]`
        std::uint32_t generation = 0;
        std::vector<std::uint32_t> matched;  ///< pattern ids contained
        std::vector<double> encoded;         ///< dense dim() vector
    };

    PatternMatchIndex() = default;

    /// Compiles `space` (patterns are sorted duplicate-free itemsets with
    /// every item < num_items, enforced by FeatureSpace/model loading).
    static PatternMatchIndex Build(const FeatureSpace& space);

    std::size_t num_items() const { return num_items_; }
    std::size_t num_patterns() const { return pattern_len_.size(); }
    std::size_t dim() const { return num_items_ + pattern_len_.size(); }
    /// Total posting entries (= sum of pattern lengths).
    std::size_t num_postings() const { return postings_.size(); }

    /// Sizes `scratch` for this index (idempotent; cheap when already sized).
    void InitScratch(Scratch* scratch) const;

    /// Matching only: fills scratch->matched with the ids of all patterns
    /// contained in `transaction` (sorted, duplicate-free). This is the
    /// O(items × postings) inner loop — no dense vector is touched.
    void MatchInto(const std::vector<ItemId>& transaction, Scratch* scratch) const;

    /// Encodes `transaction` (sorted, duplicate-free) into scratch->encoded,
    /// bit-identically to FeatureSpace::Encode.
    void EncodeInto(const std::vector<ItemId>& transaction, Scratch* scratch) const;

    /// Convenience for tests/benches: number of contained patterns.
    std::size_t CountMatches(const std::vector<ItemId>& transaction,
                             Scratch* scratch) const {
        InitScratch(scratch);
        MatchInto(transaction, scratch);
        return scratch->matched.size();
    }

  private:
    std::size_t num_items_ = 0;
    /// CSR: postings_[offsets_[i] .. offsets_[i+1]) = patterns containing i.
    std::vector<std::uint32_t> offsets_;
    std::vector<std::uint32_t> postings_;
    std::vector<std::uint32_t> pattern_len_;
};

}  // namespace dfp::serve
