#include "serve/protocol.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/json.hpp"

namespace dfp::serve {

namespace {

Result<std::vector<ItemId>> ParseItems(const obs::JsonValue& value,
                                       const char* what) {
    if (!value.is_array()) {
        return Status::InvalidArgument(std::string(what) +
                                       " must be an array of item ids");
    }
    std::vector<ItemId> items;
    items.reserve(value.array().size());
    for (const obs::JsonValue& entry : value.array()) {
        if (!entry.is_number()) {
            return Status::InvalidArgument("item id must be a number");
        }
        const double v = entry.number();
        if (!(v >= 0.0) || v > static_cast<double>(std::numeric_limits<ItemId>::max()) ||
            v != std::floor(v)) {
            return Status::InvalidArgument("item id out of range");
        }
        items.push_back(static_cast<ItemId>(v));
    }
    return items;
}

void AppendIdField(std::ostringstream& out, const ServeRequest& request) {
    if (request.has_id) out << ",\"id\":" << request.id;
}

}  // namespace

Result<ServeRequest> ParseServeRequest(std::string_view line) {
    auto parsed = obs::ParseJson(line);
    if (!parsed.ok()) return parsed.status();
    if (!parsed->is_object()) {
        return Status::InvalidArgument("request must be a JSON object");
    }
    const obs::JsonValue* op = parsed->Find("op");
    if (op == nullptr || !op->is_string()) {
        return Status::InvalidArgument("request needs a string \"op\"");
    }

    ServeRequest request;
    if (const obs::JsonValue* id = parsed->Find("id"); id != nullptr) {
        if (!id->is_number() || id->number() < 0.0 ||
            id->number() != std::floor(id->number())) {
            return Status::InvalidArgument("\"id\" must be a non-negative integer");
        }
        request.id = static_cast<std::uint64_t>(id->number());
        request.has_id = true;
    }
    if (const obs::JsonValue* dl = parsed->Find("deadline_ms"); dl != nullptr) {
        if (!dl->is_number()) {
            return Status::InvalidArgument("\"deadline_ms\" must be a number");
        }
        request.deadline_ms = dl->number();
    }

    const std::string& name = op->string();
    if (name == "predict") {
        request.op = ServeOp::kPredict;
        const obs::JsonValue* items = parsed->Find("items");
        if (items == nullptr) {
            return Status::InvalidArgument("predict needs \"items\"");
        }
        auto txn = ParseItems(*items, "\"items\"");
        if (!txn.ok()) return txn.status();
        request.batch.push_back(std::move(*txn));
    } else if (name == "predict_batch") {
        request.op = ServeOp::kPredictBatch;
        const obs::JsonValue* batch = parsed->Find("batch");
        if (batch == nullptr || !batch->is_array()) {
            return Status::InvalidArgument(
                "predict_batch needs a \"batch\" array of transactions");
        }
        request.batch.reserve(batch->array().size());
        for (const obs::JsonValue& txn_json : batch->array()) {
            auto txn = ParseItems(txn_json, "batch entry");
            if (!txn.ok()) return txn.status();
            request.batch.push_back(std::move(*txn));
        }
    } else if (name == "stats") {
        request.op = ServeOp::kStats;
    } else if (name == "reload") {
        request.op = ServeOp::kReload;
        if (const obs::JsonValue* path = parsed->Find("path"); path != nullptr) {
            if (!path->is_string()) {
                return Status::InvalidArgument("\"path\" must be a string");
            }
            request.path = path->string();
        }
    } else if (name == "health") {
        request.op = ServeOp::kHealth;
    } else if (name == "ready") {
        request.op = ServeOp::kReady;
    } else if (name == "metrics") {
        request.op = ServeOp::kMetrics;
    } else if (name == "trace_dump") {
        request.op = ServeOp::kTraceDump;
    } else {
        return Status::InvalidArgument("unknown op '" + name + "'");
    }
    return request;
}

std::string RenderPredictResponse(const ServeRequest& request,
                                  const Prediction& prediction,
                                  double latency_ms) {
    std::ostringstream out;
    out << "{\"ok\":true,\"label\":" << prediction.label
        << ",\"version\":" << prediction.model_version << ",\"latency_ms\":";
    obs::WriteJsonNumber(out, latency_ms);
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderPredictBatchResponse(const ServeRequest& request,
                                       const std::vector<Prediction>& predictions,
                                       double latency_ms) {
    std::ostringstream out;
    out << "{\"ok\":true,\"labels\":[";
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        if (i > 0) out << ',';
        out << predictions[i].label;
    }
    const std::uint64_t version =
        predictions.empty() ? 0 : predictions.front().model_version;
    out << "],\"version\":" << version << ",\"latency_ms\":";
    obs::WriteJsonNumber(out, latency_ms);
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderStatsResponse(const ServeRequest& request,
                                const obs::MetricsSnapshot& snapshot) {
    // A live mini run-report: every dfp.serve.* counter and gauge.
    std::ostringstream out;
    out << "{\"ok\":true,\"stats\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snapshot.counters) {
        if (name.rfind("dfp.serve.", 0) != 0) continue;
        if (!first) out << ',';
        first = false;
        obs::WriteJsonString(out, name);
        out << ':' << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snapshot.gauges) {
        if (name.rfind("dfp.serve.", 0) != 0) continue;
        if (!first) out << ',';
        first = false;
        obs::WriteJsonString(out, name);
        out << ':';
        obs::WriteJsonNumber(out, value);
    }
    out << "}}";
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderReloadResponse(const ServeRequest& request,
                                 std::uint64_t version) {
    std::ostringstream out;
    out << "{\"ok\":true,\"version\":" << version;
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderHealthResponse(const ServeRequest& request, bool serving,
                                 std::uint64_t version, bool draining) {
    std::ostringstream out;
    out << "{\"ok\":true,\"serving\":" << (serving ? "true" : "false")
        << ",\"version\":" << version
        << ",\"draining\":" << (draining ? "true" : "false");
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderReadyResponse(const ServeRequest& request, bool ready,
                                std::uint64_t version) {
    std::ostringstream out;
    out << "{\"ok\":true,\"ready\":" << (ready ? "true" : "false")
        << ",\"version\":" << version;
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderMetricsResponse(const ServeRequest& request,
                                  std::string_view prometheus_text) {
    std::ostringstream out;
    out << "{\"ok\":true,\"metrics\":";
    obs::WriteJsonString(out, prometheus_text);
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderTraceDumpResponse(const ServeRequest& request,
                                    std::string_view chrome_trace_json) {
    std::ostringstream out;
    out << "{\"ok\":true,\"trace\":" << chrome_trace_json;
    AppendIdField(out, request);
    out << '}';
    return out.str();
}

std::string RenderErrorResponse(const ServeRequest* request, const Status& status) {
    std::ostringstream out;
    out << "{\"ok\":false,\"error\":\"" << StatusCodeName(status.code())
        << "\",\"message\":";
    obs::WriteJsonString(out, status.message());
    if (request != nullptr && request->has_id) out << ",\"id\":" << request->id;
    out << '}';
    return out.str();
}

}  // namespace dfp::serve
