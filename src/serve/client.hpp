// ServeClient: speaks the line-delimited JSON protocol over either transport.
//
// * In-process: constructed on a RequestDispatcher — request lines are
//   rendered, dispatched and parsed exactly as over the wire, with no socket.
//   Used by the quickstart --serve smoke path and the protocol tests.
// * TCP: Connect() to a running dfp_serve. Used by the server tests and the
//   bench_serving closed-loop load generator.
//
// Not thread-safe; use one client per thread (connections are cheap).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/socket.hpp"
#include "common/status.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"

namespace dfp::serve {

class ServeClient {
  public:
    /// In-process transport (dispatcher is borrowed).
    explicit ServeClient(RequestDispatcher& dispatcher)
        : dispatcher_(&dispatcher) {}

    /// TCP transport.
    static Result<ServeClient> Connect(const std::string& host,
                                       std::uint16_t port);

    ServeClient(ServeClient&&) = default;
    ServeClient& operator=(ServeClient&&) = default;

    Result<Prediction> Predict(const std::vector<ItemId>& items,
                               double deadline_ms = -1.0);
    Result<std::vector<Prediction>> PredictBatch(
        const std::vector<std::vector<ItemId>>& batch);
    /// Current model version after a successful reload.
    Result<std::uint64_t> Reload(const std::string& path = "");
    Result<obs::JsonValue> Stats();
    Result<obs::JsonValue> Health();
    /// Prometheus text exposition, exactly as `GET /metrics` would serve it.
    Result<std::string> Metrics();
    /// Chrome trace-event document of the server's recent request traces.
    Result<obs::JsonValue> TraceDump();

    /// Raw line round-trip (the protocol golden tests use this directly).
    Result<std::string> RoundTrip(const std::string& line);

  private:
    // Socket lives on the heap so ServeClient stays movable while the
    // LineReader keeps a stable reference to it.
    explicit ServeClient(std::unique_ptr<Socket> socket)
        : socket_(std::move(socket)),
          reader_(std::make_unique<LineReader>(*socket_)) {}

    /// RoundTrip + parse + "ok" check; protocol errors come back as the
    /// Status carried in the error response.
    Result<obs::JsonValue> Call(const std::string& line);

    RequestDispatcher* dispatcher_ = nullptr;
    std::unique_ptr<Socket> socket_;
    std::unique_ptr<LineReader> reader_;
};

}  // namespace dfp::serve
