// ServeClient: speaks the line-delimited JSON protocol over either transport.
//
// * In-process: constructed on a RequestDispatcher — request lines are
//   rendered, dispatched and parsed exactly as over the wire, with no socket.
//   Used by the quickstart --serve smoke path and the protocol tests.
// * TCP: Connect() to a running dfp_serve. Used by the server tests and the
//   bench_serving closed-loop load generator.
//
// Self-healing (DESIGN.md §15): with a RetryPolicy of max_attempts > 1, the
// idempotent read-path ops (Predict, PredictBatch, Health, Ready) retry on
// transport failure or a kUnavailable response, reconnecting as needed, with
// exponential backoff + decorrelated jitter bounded by the policy deadline.
// A retry is refused the moment any byte of a response has been received
// (LineReader::buffered_bytes() != 0): resending after a partial response
// could double-execute. Mutating ops (Reload) never retry.
//
// Not thread-safe; use one client per thread (connections are cheap).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/socket.hpp"
#include "common/status.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"

namespace dfp::serve {

/// Retry policy for idempotent ops. Defaults are retry-off (max_attempts 1).
struct RetryPolicy {
    /// Total attempts, including the first; 1 disables retries.
    int max_attempts = 1;
    /// Decorrelated-jitter backoff: sleep_n = Uniform(initial, 3 * sleep_{n-1})
    /// capped at max_backoff_ms (AWS architecture-blog variant — spreads
    /// synchronized retry storms without the full-jitter cold-start penalty).
    double initial_backoff_ms = 2.0;
    double max_backoff_ms = 100.0;
    /// Wall-clock budget across ALL attempts and backoffs; < 0 = unbounded.
    /// Backoff sleeps are clamped so the final attempt fits the budget.
    double deadline_ms = -1.0;
    /// Seed for the jitter stream (deterministic retries in tests).
    std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
};

class ServeClient {
  public:
    /// In-process transport (dispatcher is borrowed).
    explicit ServeClient(RequestDispatcher& dispatcher,
                         RetryPolicy retry = RetryPolicy{})
        : dispatcher_(&dispatcher), retry_(retry), jitter_(retry.jitter_seed) {}

    /// TCP transport.
    static Result<ServeClient> Connect(const std::string& host,
                                       std::uint16_t port,
                                       RetryPolicy retry = RetryPolicy{});

    ServeClient(ServeClient&&) = default;
    ServeClient& operator=(ServeClient&&) = default;

    Result<Prediction> Predict(const std::vector<ItemId>& items,
                               double deadline_ms = -1.0);
    Result<std::vector<Prediction>> PredictBatch(
        const std::vector<std::vector<ItemId>>& batch);
    /// Current model version after a successful reload.
    Result<std::uint64_t> Reload(const std::string& path = "");
    Result<obs::JsonValue> Stats();
    Result<obs::JsonValue> Health();
    /// True iff the server has a model installed and is not draining.
    Result<bool> Ready();
    /// Prometheus text exposition, exactly as `GET /metrics` would serve it.
    Result<std::string> Metrics();
    /// Chrome trace-event document of the server's recent request traces.
    Result<obs::JsonValue> TraceDump();

    /// Raw line round-trip (the protocol golden tests use this directly).
    Result<std::string> RoundTrip(const std::string& line);

  private:
    // Socket lives on the heap so ServeClient stays movable while the
    // LineReader keeps a stable reference to it.
    ServeClient(std::unique_ptr<Socket> socket, std::string host,
                std::uint16_t port, RetryPolicy retry)
        : socket_(std::move(socket)),
          reader_(std::make_unique<LineReader>(*socket_)),
          host_(std::move(host)),
          port_(port),
          retry_(retry),
          jitter_(retry.jitter_seed) {}

    /// RoundTrip + parse + "ok" check; protocol errors come back as the
    /// Status carried in the error response. One attempt, no retries;
    /// `*transport_failed` (optional) is set when the failure happened at the
    /// socket layer rather than as a well-formed error response.
    Result<obs::JsonValue> Call(const std::string& line,
                                bool* transport_failed = nullptr);

    /// Call with the retry loop — idempotent ops only.
    Result<obs::JsonValue> CallIdempotent(const std::string& line);

    /// Tears down and re-establishes the TCP transport (no-op in-process).
    Status Reconnect();

    RequestDispatcher* dispatcher_ = nullptr;
    std::unique_ptr<Socket> socket_;
    std::unique_ptr<LineReader> reader_;
    std::string host_;
    std::uint16_t port_ = 0;
    RetryPolicy retry_;
    Rng jitter_;
};

}  // namespace dfp::serve
