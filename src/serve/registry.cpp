#include "serve/registry.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfp::serve {

Result<ServablePtr> ModelRegistry::Reload(const std::string& path) {
    obs::Span span("serve.reload");
    auto loaded = LoadPipelineModelFromFile(path);
    if (!loaded.ok()) {
        obs::Registry::Get().GetCounter("dfp.serve.reload_failures").Inc();
        return loaded.status();
    }
    ServablePtr published = Publish(std::move(*loaded), path);
    span.Annotate("version", static_cast<double>(published->version));
    return published;
}

ServablePtr ModelRegistry::Install(LoadedModel model, std::string source) {
    return Publish(std::move(model), std::move(source));
}

ServablePtr ModelRegistry::Publish(LoadedModel model, std::string source) {
    std::lock_guard<std::mutex> lock(reload_mu_);
    auto servable = std::make_shared<const ServableModel>(
        std::move(model), next_version_++, std::move(source));
    {
        std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
        current_ = servable;
    }
    auto& registry = obs::Registry::Get();
    registry.GetCounter("dfp.serve.reloads").Inc();
    registry.GetGauge("dfp.serve.model_version")
        .Set(static_cast<double>(servable->version));
    registry.GetGauge("dfp.serve.model_patterns")
        .Set(static_cast<double>(servable->index.num_patterns()));
    registry.GetGauge("dfp.serve.model_dim")
        .Set(static_cast<double>(servable->index.dim()));
    return servable;
}

}  // namespace dfp::serve
