#include "serve/registry.hpp"

#include <new>

#include "common/failpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfp::serve {

namespace {

/// Evaluates a reload-stage failpoint: Ok when disarmed or kDelay, an
/// injected error otherwise. Lets chaos tests fail a reload at any stage.
Status StageFailpoint(const char* name, const std::string& path) {
    if (const auto fp = DFP_FAILPOINT(name); fp) {
        fp.Sleep();
        if (fp.kind == FailpointKind::kAllocFail) throw std::bad_alloc();
        if (fp.kind != FailpointKind::kDelay) {
            return Status::Internal(std::string("injected ") + name +
                                    " failure for '" + path + "'");
        }
    }
    return Status::Ok();
}

}  // namespace

Result<ServablePtr> ModelRegistry::Reload(const std::string& path) {
    obs::Span span("serve.reload");
    auto& metrics = obs::Registry::Get();
    auto fail = [&metrics](Status st) -> Result<ServablePtr> {
        metrics.GetCounter("dfp.serve.reload_failures").Inc();
        return st;
    };

    // Writers serialize end to end: the whole load -> validate -> build ->
    // swap sequence runs under reload_mu_, so two concurrent reloads can
    // never interleave their installs (readers stay lock-free throughout).
    std::lock_guard<std::mutex> lock(reload_mu_);

    // Stage 1: load + parse (checksum-verified; `core.model_io.load`
    // failpoint lives inside). Nothing published yet — a failure here leaves
    // the current model serving untouched.
    auto loaded = LoadPipelineModelFromFile(path);
    if (!loaded.ok()) return fail(loaded.status());

    // Stages 2+3: validate, then build the servable (pattern index
    // compilation) off to the side. A bundle that parses but describes a
    // degenerate model must not evict a good one, and allocation failure is
    // survivable because nothing has been swapped yet.
    ServablePtr servable;
    try {
        Status st = StageFailpoint("serve.registry.validate", path);
        if (!st.ok()) return fail(st);
        if (loaded->feature_space().num_items() == 0) {
            return fail(Status::InvalidArgument(
                "model in '" + path + "' has an empty feature space"));
        }
        st = StageFailpoint("serve.registry.swap", path);
        if (!st.ok()) return fail(st);
        servable = std::make_shared<const ServableModel>(
            std::move(*loaded), next_version_, path);
    } catch (const std::bad_alloc&) {
        return fail(Status::ResourceExhausted(
            "out of memory building servable for '" + path + "'"));
    }

    // Stage 4: install. The pointer swap is the commit point.
    ServablePtr previous;
    {
        std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
        previous = current_;
        current_ = servable;
    }
    next_version_++;

    // Stage 5: post-publish verification. If it fails, roll back to the
    // previous version (which in-flight snapshots still hold anyway) so a
    // bad publish never sticks.
    const Status post = StageFailpoint("serve.registry.publish", path);
    if (!post.ok()) {
        {
            std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
            current_ = previous;
        }
        metrics.GetCounter("dfp.serve.reload_rollbacks").Inc();
        return fail(post);
    }

    MarkPublished();
    RecordPublish(metrics, *servable);
    span.Annotate("version", static_cast<double>(servable->version));
    return servable;
}

ServablePtr ModelRegistry::Install(LoadedModel model, std::string source) {
    std::lock_guard<std::mutex> lock(reload_mu_);
    auto servable = std::make_shared<const ServableModel>(
        std::move(model), next_version_++, std::move(source));
    {
        std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
        current_ = servable;
    }
    MarkPublished();
    RecordPublish(obs::Registry::Get(), *servable);
    return servable;
}

void ModelRegistry::RecordPublish(obs::Registry& metrics,
                                  const ServableModel& servable) {
    metrics.GetCounter("dfp.serve.reloads").Inc();
    metrics.GetGauge("dfp.serve.model_version")
        .Set(static_cast<double>(servable.version));
    metrics.GetGauge("dfp.serve.model_patterns")
        .Set(static_cast<double>(servable.index.num_patterns()));
    metrics.GetGauge("dfp.serve.model_dim")
        .Set(static_cast<double>(servable.index.dim()));
}

}  // namespace dfp::serve
