// Line-delimited JSON protocol of the prediction server.
//
// One request per line, one single-line JSON response per request. Ops:
//
//   {"op":"predict","items":[3,7,12],"deadline_ms":50}
//     -> {"ok":true,"label":1,"version":1,"latency_ms":0.42}
//   {"op":"predict_batch","batch":[[3,7],[1,4,9]]}
//     -> {"ok":true,"labels":[1,0],"version":1,"latency_ms":0.9}
//   {"op":"stats"}
//     -> {"ok":true,"stats":{"counters":{"dfp.serve.requests":12,...},
//                            "gauges":{"dfp.serve.model_version":1,...}}}
//   {"op":"reload","path":"m.dfp"}
//     -> {"ok":true,"version":2}
//   {"op":"health"}
//     -> {"ok":true,"serving":true,"version":1,"draining":false}
//   {"op":"ready"}
//     -> {"ok":true,"ready":true,"version":1}
//        (ready = a model is installed and the server is not draining; the
//        same predicate backs `GET /healthz` on the metrics side-port)
//   {"op":"metrics"}
//     -> {"ok":true,"metrics":"<Prometheus text exposition, escaped>"}
//        (byte-identical to the side-port `GET /metrics` body)
//   {"op":"trace_dump"}
//     -> {"ok":true,"trace":{"traceEvents":[...]}}
//        (Chrome trace-event JSON, loadable in chrome://tracing)
//
// Requests may carry an "id" (non-negative integer) echoed back in the
// response for client-side correlation. Every error is
//   {"ok":false,"error":"<StatusCode name>","message":"..."}
// with kUnavailable reserved for load shedding / drain (back off and retry).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "data/encoder.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"

namespace dfp::serve {

enum class ServeOp {
    kPredict,
    kPredictBatch,
    kStats,
    kReload,
    kHealth,
    kReady,
    kMetrics,
    kTraceDump,
};

struct ServeRequest {
    ServeOp op = ServeOp::kHealth;
    /// Transactions (1 entry for predict). Items are validated to be
    /// non-negative integers that fit ItemId; sorting/dedup happens in the
    /// engine.
    std::vector<std::vector<ItemId>> batch;
    double deadline_ms = -1.0;
    std::string path;  ///< reload target ("" = server's configured model path)
    std::uint64_t id = 0;
    bool has_id = false;
};

/// Parses one request line. InvalidArgument/ParseError on malformed input.
Result<ServeRequest> ParseServeRequest(std::string_view line);

/// Response renderers. All return a single line WITHOUT the trailing '\n'.
std::string RenderPredictResponse(const ServeRequest& request,
                                  const Prediction& prediction,
                                  double latency_ms);
std::string RenderPredictBatchResponse(const ServeRequest& request,
                                       const std::vector<Prediction>& predictions,
                                       double latency_ms);
std::string RenderStatsResponse(const ServeRequest& request,
                                const obs::MetricsSnapshot& snapshot);
std::string RenderReloadResponse(const ServeRequest& request,
                                 std::uint64_t version);
std::string RenderHealthResponse(const ServeRequest& request, bool serving,
                                 std::uint64_t version, bool draining);
std::string RenderReadyResponse(const ServeRequest& request, bool ready,
                                std::uint64_t version);
/// `prometheus_text` is embedded as an escaped JSON string so the client can
/// recover the exact exposition payload.
std::string RenderMetricsResponse(const ServeRequest& request,
                                  std::string_view prometheus_text);
/// `chrome_trace_json` must already be a valid JSON document
/// (RenderChromeTrace output); it is embedded verbatim.
std::string RenderTraceDumpResponse(const ServeRequest& request,
                                    std::string_view chrome_trace_json);
/// `request` may be null (unparseable line).
std::string RenderErrorResponse(const ServeRequest* request, const Status& status);

}  // namespace dfp::serve
