#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <new>

#include "common/failpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfp::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Scores one transaction against the snapshot, converting anything thrown
/// into a Status: scoring one poisoned request must fail that request alone,
/// never take down the batch, the worker thread, or the process. The
/// `serve.engine.score` failpoint injects exactly those escapes.
Result<Prediction> ScoreOne(const ServableModel& servable,
                            const std::vector<ItemId>& items,
                            PatternMatchIndex::Scratch* scratch) {
    try {
        if (const auto fp = DFP_FAILPOINT("serve.engine.score"); fp) {
            fp.Sleep();
            switch (fp.kind) {
                case FailpointKind::kAllocFail:
                    throw std::bad_alloc();
                case FailpointKind::kDelay:
                    break;
                default:
                    return Status::Internal("injected scoring failure");
            }
        }
        servable.index.EncodeInto(items, scratch);
        return Prediction{servable.model.learner().Predict(scratch->encoded),
                          servable.version};
    } catch (const std::bad_alloc&) {
        return Status::ResourceExhausted("out of memory while scoring");
    } catch (const std::exception& e) {
        return Status::Internal(std::string("scoring failed: ") + e.what());
    }
}

/// Serve latencies live at tens of microseconds; the decade-style defaults
/// (and the old 0.05 ms floor) collapsed the whole distribution into the
/// first bucket or two. These bounds resolve 5 µs .. 1 s.
std::vector<double> LatencyBoundsMs() {
    return {0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,   1.0,   2.5,
            5.0,   10.0, 25.0,  50.0, 100.0, 250.0, 1000.0};
}

/// HDR geometry for serve latencies: 1 µs .. 60 s in milliseconds, 64
/// sub-buckets per octave (quantile error <= 0.79%), 8 recording shards.
obs::HdrConfig ServeHdrConfig() {
    obs::HdrConfig config;
    config.min_value = 1e-3;
    config.max_value = 6e4;
    config.subbuckets_per_octave = 64;
    config.shards = 8;
    return config;
}

double StageMs(double begin_us, double end_us) {
    return end_us > begin_us ? (end_us - begin_us) / 1000.0 : 0.0;
}

std::vector<double> BatchSizeBounds() {
    return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
}

void Canonicalize(std::vector<ItemId>* items) {
    std::sort(items->begin(), items->end());
    items->erase(std::unique(items->begin(), items->end()), items->end());
}

}  // namespace

ScoringEngine::ScoringEngine(ModelRegistry& registry, EngineConfig config)
    : registry_(registry),
      config_(config),
      trace_ring_(config.telemetry.trace_ring_capacity),
      slow_sampler_(config.telemetry.slow_request_ms) {
    const std::size_t threads = ResolveNumThreads(config_.num_threads);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);

    auto& reg = obs::Registry::Get();
    const obs::HdrConfig hdr = ServeHdrConfig();
    const std::size_t epochs = std::max<std::size_t>(2, config_.telemetry.window_epochs);
    const double epoch_s = std::max(0.05, config_.telemetry.window_epoch_seconds);
    win_total_ = &reg.GetWindowedHdr("dfp.serve.latency.total", hdr, epochs, epoch_s);
    win_queue_ = &reg.GetWindowedHdr("dfp.serve.latency.queue", hdr, epochs, epoch_s);
    win_batch_wait_ =
        &reg.GetWindowedHdr("dfp.serve.latency.batch_wait", hdr, epochs, epoch_s);
    win_score_ = &reg.GetWindowedHdr("dfp.serve.latency.score", hdr, epochs, epoch_s);
    win_serialize_ =
        &reg.GetWindowedHdr("dfp.serve.latency.serialize", hdr, epochs, epoch_s);

    if (config_.telemetry.background_flush && !config_.manual_pump) {
        flusher_ = std::make_unique<obs::WindowFlusher>(
            std::vector<obs::WindowedHdrHistogram*>{win_total_, win_queue_,
                                                    win_batch_wait_, win_score_,
                                                    win_serialize_},
            /*period_seconds=*/epoch_s / 4.0);
    }

    if (!config_.manual_pump) {
        batcher_ = std::thread([this] { BatcherLoop(); });
    }
}

ScoringEngine::~ScoringEngine() { Stop(); }

std::future<Result<Prediction>> ScoringEngine::Submit(std::vector<ItemId> items,
                                                      double deadline_ms,
                                                      CancelToken* cancel,
                                                      obs::RequestTrace* trace) {
    auto& registry = obs::Registry::Get();
    registry.GetCounter("dfp.serve.requests").Inc();
    if (deadline_ms < 0.0) deadline_ms = config_.default_deadline_ms;

    PendingRequest request{std::move(items), DeadlineTimer(deadline_ms), cancel,
                           std::promise<Result<Prediction>>{}, Clock::now()};
    request.external_trace = trace;
    obs::RequestTrace* t = request.trace_target();
    if (t->id == 0) t->id = obs::RequestTrace::NextId();
    t->submit_tid = obs::CompressedThreadId();
    t->submit_us = obs::NowMicros();
    Canonicalize(&request.items);
    std::future<Result<Prediction>> future = request.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        const bool shed =
            stopping_ || queue_.size() >= config_.queue_capacity;
        if (shed) {
            registry.GetCounter("dfp.serve.shed").Inc();
            t->outcome = static_cast<std::uint16_t>(StatusCode::kUnavailable);
            // Internal traces are committed now; an external trace belongs
            // to the caller, who commits after stamping serialize times.
            if (request.external_trace == nullptr) CommitTrace(request.trace);
            request.promise.set_value(Status::Unavailable(
                stopping_ ? "scoring engine is draining"
                          : "admission queue full (" +
                                std::to_string(config_.queue_capacity) +
                                " pending)"));
            return future;
        }
        queue_.push_back(std::move(request));
        registry.GetGauge("dfp.serve.queue_depth")
            .Set(static_cast<double>(queue_.size()));
    }
    cv_.notify_one();
    return future;
}

Result<Prediction> ScoringEngine::Predict(std::vector<ItemId> items,
                                          double deadline_ms) {
    return Submit(std::move(items), deadline_ms).get();
}

Result<std::vector<Prediction>> ScoringEngine::PredictBatch(
    std::vector<std::vector<ItemId>> batch) const {
    const ServablePtr snapshot = registry_.Snapshot();
    if (snapshot == nullptr) {
        obs::Registry::Get().GetCounter("dfp.serve.no_model").Inc();
        return Status::FailedPrecondition("no model installed");
    }
    for (auto& items : batch) Canonicalize(&items);

    std::vector<Prediction> out(batch.size());
    std::vector<Status> errors(batch.size(), Status::Ok());
    const auto score_range = [&](std::size_t begin, std::size_t end) {
        PatternMatchIndex::Scratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
            Result<Prediction> result = ScoreOne(*snapshot, batch[i], &scratch);
            if (result.ok()) {
                out[i] = std::move(*result);
            } else {
                errors[i] = result.status();
            }
        }
    };
    ParallelFor(pool_.get(), batch.size(), score_range, /*min_grain=*/8);
    // Batch semantics are all-or-nothing: the response frame carries either
    // every prediction or one error, so the first failure fails the call.
    for (const Status& st : errors) {
        if (!st.ok()) return st;
    }
    obs::Registry::Get().GetCounter("dfp.serve.predictions").Inc(batch.size());
    return out;
}

void ScoringEngine::Stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (batcher_.joinable()) batcher_.join();
    // manual_pump mode (or anything left behind): drain inline.
    while (PumpOnce() > 0) {
    }
    if (flusher_ != nullptr) flusher_->Stop();
}

bool ScoringEngine::stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
}

std::size_t ScoringEngine::queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

std::size_t ScoringEngine::PumpOnce() { return ProcessBatch(TakeBatch()); }

void ScoringEngine::BatcherLoop() {
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and fully drained
            // Micro-batch policy: once something is pending, wait up to
            // max_delay_ms (from the oldest request's arrival) for the batch
            // to fill — unless we're draining, in which case dispatch now.
            if (!stopping_ && config_.max_delay_ms > 0.0 &&
                queue_.size() < config_.max_batch) {
                const auto fill_deadline =
                    queue_.front().enqueued +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            config_.max_delay_ms));
                cv_.wait_until(lock, fill_deadline, [this] {
                    return stopping_ || queue_.size() >= config_.max_batch;
                });
            }
        }
        ProcessBatch(TakeBatch());
    }
}

std::vector<ScoringEngine::PendingRequest> ScoringEngine::TakeBatch() {
    std::vector<PendingRequest> batch;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const std::size_t take = std::min(queue_.size(), config_.max_batch);
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        obs::Registry::Get().GetGauge("dfp.serve.queue_depth")
            .Set(static_cast<double>(queue_.size()));
    }
    const double now_us = obs::NowMicros();
    for (PendingRequest& request : batch) {
        obs::RequestTrace* t = request.trace_target();
        t->dequeue_us = now_us;
        t->batch_size = static_cast<std::uint32_t>(batch.size());
    }
    return batch;
}

std::size_t ScoringEngine::ProcessBatch(std::vector<PendingRequest> batch) {
    if (batch.empty()) return 0;
    obs::Span span("serve.batch");
    auto& registry = obs::Registry::Get();
    registry.GetCounter("dfp.serve.batches").Inc();
    registry.GetHistogram("dfp.serve.batch_size", BatchSizeBounds())
        .Observe(static_cast<double>(batch.size()));
    span.Annotate("requests", static_cast<double>(batch.size()));

    const ServablePtr snapshot = registry_.Snapshot();
    ParallelFor(
        pool_.get(), batch.size(),
        [&](std::size_t begin, std::size_t end) {
            ScoreRange(snapshot, batch, begin, end);
        },
        /*min_grain=*/4);
    // Per-request latency now flows through RecordStageLatencies (ScoreRange),
    // sourced from the trace timestamps rather than a separate clock read.
    return batch.size();
}

void ScoringEngine::ScoreRange(const ServablePtr& snapshot,
                               std::vector<PendingRequest>& batch,
                               std::size_t begin, std::size_t end) {
    auto& registry = obs::Registry::Get();
    PatternMatchIndex::Scratch scratch;
    std::size_t scored = 0;
    for (std::size_t i = begin; i < end; ++i) {
        PendingRequest& request = batch[i];
        obs::RequestTrace* t = request.trace_target();
        t->score_tid = obs::CompressedThreadId();
        t->score_start_us = obs::NowMicros();

        Result<Prediction> result = Prediction{};
        if (request.cancel != nullptr && request.cancel->Poll()) {
            registry.GetCounter("dfp.serve.cancelled").Inc();
            result = Status::Cancelled("request cancelled");
        } else if (request.deadline.expired()) {
            registry.GetCounter("dfp.serve.deadline_expired").Inc();
            result = Status::Cancelled("deadline expired before scoring");
        } else if (snapshot == nullptr) {
            registry.GetCounter("dfp.serve.no_model").Inc();
            result = Status::FailedPrecondition("no model installed");
        } else {
            result = ScoreOne(*snapshot, request.items, &scratch);
            if (result.ok()) {
                ++scored;
            } else {
                registry.GetCounter("dfp.serve.score_errors").Inc();
            }
        }
        t->score_end_us = obs::NowMicros();
        t->outcome = static_cast<std::uint16_t>(result.status().code());

        // Lifetime rule: a dispatcher-owned (external) trace must not be
        // touched once the promise is fulfilled — the dispatcher wakes on the
        // future and immediately keeps stamping it. Copy first, publish
        // second, record from the copy.
        const obs::RequestTrace done = *t;
        request.promise.set_value(std::move(result));
        RecordStageLatencies(done);
        if (request.external_trace == nullptr) CommitTrace(done);
    }
    if (scored > 0) registry.GetCounter("dfp.serve.predictions").Inc(scored);
}

void ScoringEngine::CommitTrace(const obs::RequestTrace& trace) {
    trace_ring_.Push(trace);
    if (slow_sampler_.enabled()) slow_sampler_.Sample(trace);
    const double serialize_ms =
        StageMs(trace.serialize_start_us, trace.serialize_end_us);
    if (serialize_ms > 0.0) win_serialize_->Record(serialize_ms);
}

void ScoringEngine::RecordStageLatencies(const obs::RequestTrace& trace) {
    win_queue_->Record(StageMs(trace.submit_us, trace.dequeue_us));
    win_batch_wait_->Record(StageMs(trace.dequeue_us, trace.score_start_us));
    win_score_->Record(StageMs(trace.score_start_us, trace.score_end_us));
    const double total_ms = StageMs(trace.submit_us, trace.score_end_us);
    win_total_->Record(total_ms);
    obs::Registry::Get()
        .GetHistogram("dfp.serve.latency_ms", LatencyBoundsMs())
        .Observe(total_ms);
}

}  // namespace dfp::serve
