#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfp::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::vector<double> LatencyBoundsMs() {
    return {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
            250.0, 1000.0};
}

std::vector<double> BatchSizeBounds() {
    return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
}

void Canonicalize(std::vector<ItemId>* items) {
    std::sort(items->begin(), items->end());
    items->erase(std::unique(items->begin(), items->end()), items->end());
}

}  // namespace

ScoringEngine::ScoringEngine(ModelRegistry& registry, EngineConfig config)
    : registry_(registry), config_(config) {
    const std::size_t threads = ResolveNumThreads(config_.num_threads);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    if (!config_.manual_pump) {
        batcher_ = std::thread([this] { BatcherLoop(); });
    }
}

ScoringEngine::~ScoringEngine() { Stop(); }

std::future<Result<Prediction>> ScoringEngine::Submit(std::vector<ItemId> items,
                                                      double deadline_ms,
                                                      CancelToken* cancel) {
    auto& registry = obs::Registry::Get();
    registry.GetCounter("dfp.serve.requests").Inc();
    if (deadline_ms < 0.0) deadline_ms = config_.default_deadline_ms;

    PendingRequest request{std::move(items), DeadlineTimer(deadline_ms), cancel,
                           std::promise<Result<Prediction>>{}, Clock::now()};
    Canonicalize(&request.items);
    std::future<Result<Prediction>> future = request.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
            registry.GetCounter("dfp.serve.shed").Inc();
            request.promise.set_value(
                Status::Unavailable("scoring engine is draining"));
            return future;
        }
        if (queue_.size() >= config_.queue_capacity) {
            registry.GetCounter("dfp.serve.shed").Inc();
            request.promise.set_value(
                Status::Unavailable("admission queue full (" +
                                    std::to_string(config_.queue_capacity) +
                                    " pending)"));
            return future;
        }
        queue_.push_back(std::move(request));
        registry.GetGauge("dfp.serve.queue_depth")
            .Set(static_cast<double>(queue_.size()));
    }
    cv_.notify_one();
    return future;
}

Result<Prediction> ScoringEngine::Predict(std::vector<ItemId> items,
                                          double deadline_ms) {
    return Submit(std::move(items), deadline_ms).get();
}

Result<std::vector<Prediction>> ScoringEngine::PredictBatch(
    std::vector<std::vector<ItemId>> batch) const {
    const ServablePtr snapshot = registry_.Snapshot();
    if (snapshot == nullptr) {
        obs::Registry::Get().GetCounter("dfp.serve.no_model").Inc();
        return Status::FailedPrecondition("no model installed");
    }
    for (auto& items : batch) Canonicalize(&items);

    std::vector<Prediction> out(batch.size());
    const auto score_range = [&](std::size_t begin, std::size_t end) {
        PatternMatchIndex::Scratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
            snapshot->index.EncodeInto(batch[i], &scratch);
            out[i] = Prediction{snapshot->model.learner().Predict(scratch.encoded),
                                snapshot->version};
        }
    };
    ParallelFor(pool_.get(), batch.size(), score_range, /*min_grain=*/8);
    obs::Registry::Get().GetCounter("dfp.serve.predictions").Inc(batch.size());
    return out;
}

void ScoringEngine::Stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (batcher_.joinable()) batcher_.join();
    // manual_pump mode (or anything left behind): drain inline.
    while (PumpOnce() > 0) {
    }
}

bool ScoringEngine::stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
}

std::size_t ScoringEngine::queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

std::size_t ScoringEngine::PumpOnce() { return ProcessBatch(TakeBatch()); }

void ScoringEngine::BatcherLoop() {
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and fully drained
            // Micro-batch policy: once something is pending, wait up to
            // max_delay_ms (from the oldest request's arrival) for the batch
            // to fill — unless we're draining, in which case dispatch now.
            if (!stopping_ && config_.max_delay_ms > 0.0 &&
                queue_.size() < config_.max_batch) {
                const auto fill_deadline =
                    queue_.front().enqueued +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            config_.max_delay_ms));
                cv_.wait_until(lock, fill_deadline, [this] {
                    return stopping_ || queue_.size() >= config_.max_batch;
                });
            }
        }
        ProcessBatch(TakeBatch());
    }
}

std::vector<ScoringEngine::PendingRequest> ScoringEngine::TakeBatch() {
    std::vector<PendingRequest> batch;
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    obs::Registry::Get().GetGauge("dfp.serve.queue_depth")
        .Set(static_cast<double>(queue_.size()));
    return batch;
}

std::size_t ScoringEngine::ProcessBatch(std::vector<PendingRequest> batch) {
    if (batch.empty()) return 0;
    obs::Span span("serve.batch");
    auto& registry = obs::Registry::Get();
    registry.GetCounter("dfp.serve.batches").Inc();
    registry.GetHistogram("dfp.serve.batch_size", BatchSizeBounds())
        .Observe(static_cast<double>(batch.size()));
    span.Annotate("requests", static_cast<double>(batch.size()));

    const ServablePtr snapshot = registry_.Snapshot();
    ParallelFor(
        pool_.get(), batch.size(),
        [&](std::size_t begin, std::size_t end) {
            ScoreRange(snapshot, batch, begin, end);
        },
        /*min_grain=*/4);

    auto& latency = registry.GetHistogram("dfp.serve.latency_ms", LatencyBoundsMs());
    for (const PendingRequest& request : batch) {
        latency.Observe(MsSince(request.enqueued));
    }
    return batch.size();
}

void ScoringEngine::ScoreRange(const ServablePtr& snapshot,
                               std::vector<PendingRequest>& batch,
                               std::size_t begin, std::size_t end) {
    auto& registry = obs::Registry::Get();
    PatternMatchIndex::Scratch scratch;
    std::size_t scored = 0;
    for (std::size_t i = begin; i < end; ++i) {
        PendingRequest& request = batch[i];
        if (request.cancel != nullptr && request.cancel->Poll()) {
            registry.GetCounter("dfp.serve.cancelled").Inc();
            request.promise.set_value(Status::Cancelled("request cancelled"));
            continue;
        }
        if (request.deadline.expired()) {
            registry.GetCounter("dfp.serve.deadline_expired").Inc();
            request.promise.set_value(
                Status::Cancelled("deadline expired before scoring"));
            continue;
        }
        if (snapshot == nullptr) {
            registry.GetCounter("dfp.serve.no_model").Inc();
            request.promise.set_value(
                Status::FailedPrecondition("no model installed"));
            continue;
        }
        snapshot->index.EncodeInto(request.items, &scratch);
        request.promise.set_value(
            Prediction{snapshot->model.learner().Predict(scratch.encoded),
                       snapshot->version});
        ++scored;
    }
    if (scored > 0) registry.GetCounter("dfp.serve.predictions").Inc(scored);
}

}  // namespace dfp::serve
