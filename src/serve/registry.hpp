// Model registry: versioned, hot-reloadable ownership of the served model.
//
// A ServableModel bundles a LoadedModel with its compiled PatternMatchIndex
// and a monotonically increasing version. The registry hands out
// `shared_ptr<const ServableModel>` snapshots; a Reload() builds the new
// servable entirely off to the side before one pointer swap publishes it.
// In-flight requests keep scoring against the snapshot they grabbed, so a
// reload drops no responses and misroutes none (each response reports the
// version that produced it).
//
// The published pointer is guarded by a plain mutex held only for the
// shared_ptr copy, not std::atomic<shared_ptr>: libstdc++ 12's _Sp_atomic
// unlocks its reader spin-bit with relaxed ordering, which TSan (correctly,
// per the C++ memory model) reports as a load/store race. A snapshot is
// taken once per scoring batch, so the mutex is off the per-prediction path.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "core/model_io.hpp"
#include "serve/scoring_index.hpp"

namespace dfp::obs {
class Registry;
}  // namespace dfp::obs

namespace dfp::serve {

/// One immutable, scorable model version.
struct ServableModel {
    ServableModel(LoadedModel loaded, std::uint64_t model_version,
                  std::string model_source)
        : model(std::move(loaded)),
          index(PatternMatchIndex::Build(model.feature_space())),
          version(model_version),
          source(std::move(model_source)) {}

    LoadedModel model;
    PatternMatchIndex index;
    std::uint64_t version;
    std::string source;
};

using ServablePtr = std::shared_ptr<const ServableModel>;

class ModelRegistry {
  public:
    ModelRegistry() = default;
    ModelRegistry(const ModelRegistry&) = delete;
    ModelRegistry& operator=(const ModelRegistry&) = delete;

    /// Validate-then-swap reload (DESIGN.md §15): parses the dfp-model v1
    /// bundle from `path` (checksum-verified), validates it, compiles its
    /// index entirely off to the side, and only then swaps it in as the next
    /// version. A failure at any stage before the swap — unreadable file,
    /// checksum mismatch, parse error, degenerate model, allocation failure —
    /// leaves the currently served model untouched; a failure detected after
    /// the swap rolls back to the previous version (counted in
    /// `dfp.serve.reload_rollbacks`). Thread-safe; concurrent reloads
    /// serialize, readers are never blocked.
    Result<ServablePtr> Reload(const std::string& path);

    /// Publishes an already-loaded model (the in-process quickstart path).
    ServablePtr Install(LoadedModel model, std::string source = "<memory>");

    /// Snapshot of the current model; null before the first load. The
    /// snapshot stays valid (and scorable) for as long as the caller holds
    /// it, across any number of subsequent reloads.
    ServablePtr Snapshot() const {
        std::lock_guard<std::mutex> lock(snapshot_mu_);
        return current_;
    }

    /// Version of the currently served model (0 = none installed).
    std::uint64_t current_version() const {
        const ServablePtr snap = Snapshot();
        return snap == nullptr ? 0 : snap->version;
    }

    /// Seconds since the last successful publish (Install, or a Reload that
    /// survived post-publish verification); negative before any publish.
    /// This is the served-model staleness signal: the streaming trainer
    /// exports it per retrain and bench_stream reports it as
    /// `staleness_seconds`.
    double SecondsSinceLastPublish() const {
        std::lock_guard<std::mutex> lock(snapshot_mu_);
        if (!published_once_) return -1.0;
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - last_publish_)
            .count();
    }

  private:
    static void RecordPublish(obs::Registry& metrics,
                              const ServableModel& servable);

    /// Stamps last_publish_ (call after a publish sticks).
    void MarkPublished() {
        std::lock_guard<std::mutex> lock(snapshot_mu_);
        last_publish_ = std::chrono::steady_clock::now();
        published_once_ = true;
    }

    mutable std::mutex snapshot_mu_;  ///< guards current_; pointer-copy only
    ServablePtr current_;
    std::chrono::steady_clock::time_point last_publish_{};  ///< snapshot_mu_
    bool published_once_ = false;                           ///< snapshot_mu_
    std::mutex reload_mu_;  ///< serializes writers end to end
    std::uint64_t next_version_ = 1;  ///< guarded by reload_mu_
};

}  // namespace dfp::serve
