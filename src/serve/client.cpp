#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/budget.hpp"
#include "obs/metrics.hpp"

namespace dfp::serve {

namespace {

/// Maps an error response ({"ok":false,"error":"...","message":"..."}) back
/// to the Status it was rendered from.
Status StatusFromErrorResponse(const obs::JsonValue& response) {
    std::string code = "Internal";
    std::string message = "malformed error response";
    if (const obs::JsonValue* error = response.Find("error");
        error != nullptr && error->is_string()) {
        code = error->string();
    }
    if (const obs::JsonValue* msg = response.Find("message");
        msg != nullptr && msg->is_string()) {
        message = msg->string();
    }
    for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
        const auto status_code = static_cast<StatusCode>(c);
        if (code == StatusCodeName(status_code)) {
            return Status(status_code, std::move(message));
        }
    }
    return Status::Internal(code + ": " + message);
}

void AppendItems(std::ostringstream& out, const std::vector<ItemId>& items) {
    out << '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out << ',';
        out << items[i];
    }
    out << ']';
}

}  // namespace

Result<ServeClient> ServeClient::Connect(const std::string& host,
                                         std::uint16_t port,
                                         RetryPolicy retry) {
    auto socket = TcpConnect(host, port);
    if (!socket.ok()) return socket.status();
    return ServeClient(std::make_unique<Socket>(std::move(*socket)), host,
                       port, retry);
}

Status ServeClient::Reconnect() {
    if (dispatcher_ != nullptr) return Status::Ok();  // nothing to re-dial
    auto socket = TcpConnect(host_, port_);
    if (!socket.ok()) return socket.status();
    socket_ = std::make_unique<Socket>(std::move(*socket));
    reader_ = std::make_unique<LineReader>(*socket_);
    obs::Registry::Get().GetCounter("dfp.serve.client.reconnects").Inc();
    return Status::Ok();
}

Result<std::string> ServeClient::RoundTrip(const std::string& line) {
    if (dispatcher_ != nullptr) return dispatcher_->HandleLine(line);
    DFP_RETURN_NOT_OK(socket_->SendAll(line + "\n"));
    std::string response;
    auto got = reader_->ReadLine(&response);
    if (!got.ok()) return got.status();
    if (!*got) return Status::Unavailable("server closed the connection");
    return response;
}

Result<obs::JsonValue> ServeClient::Call(const std::string& line,
                                         bool* transport_failed) {
    if (transport_failed != nullptr) *transport_failed = false;
    auto response = RoundTrip(line);
    if (!response.ok()) {
        if (transport_failed != nullptr) *transport_failed = true;
        return response.status();
    }
    auto parsed = obs::ParseJson(*response);
    if (!parsed.ok()) {
        return Status::Internal("unparseable response: " + *response);
    }
    const obs::JsonValue* ok = parsed->Find("ok");
    if (ok == nullptr) return Status::Internal("response missing \"ok\"");
    if (!ok->boolean()) return StatusFromErrorResponse(*parsed);
    return parsed;
}

Result<obs::JsonValue> ServeClient::CallIdempotent(const std::string& line) {
    if (retry_.max_attempts <= 1) return Call(line);

    auto& metrics = obs::Registry::Get();
    DeadlineTimer deadline(retry_.deadline_ms);
    double backoff_ms = retry_.initial_backoff_ms;
    bool need_reconnect = false;
    Result<obs::JsonValue> result = Status::Internal("retry loop never ran");
    for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
        bool transport_failed = false;
        if (need_reconnect) {
            const Status st = Reconnect();
            need_reconnect = !st.ok();
            if (!st.ok()) {
                // The dial itself failed — that IS this attempt's failure.
                transport_failed = true;
                result = st;
            }
        }
        if (!need_reconnect) {
            result = Call(line, &transport_failed);
            if (result.ok()) {
                if (attempt > 1) {
                    metrics.GetCounter("dfp.serve.client.retry_success").Inc();
                }
                return result;
            }
        }

        // Retry policy: a transport failure is retryable only while no byte
        // of the response has arrived — after that, the request may have
        // executed and a resend could double-execute. A well-formed
        // kUnavailable response (shed, draining, connection limit) is a
        // complete exchange and always retryable.
        bool retryable;
        if (transport_failed) {
            const bool partial_response =
                reader_ != nullptr && reader_->buffered_bytes() > 0;
            retryable = !partial_response;
            need_reconnect = dispatcher_ == nullptr;
        } else {
            retryable = result.status().code() == StatusCode::kUnavailable;
        }
        if (!retryable) return result;  // a real error: report, don't mask
        if (attempt >= retry_.max_attempts) break;

        // Decorrelated jitter, clamped to the remaining deadline budget.
        double sleep_ms = std::min(
            retry_.max_backoff_ms,
            jitter_.Uniform(retry_.initial_backoff_ms, 3.0 * backoff_ms));
        backoff_ms = std::max(sleep_ms, retry_.initial_backoff_ms);
        if (retry_.deadline_ms >= 0.0) {
            const double remaining = deadline.remaining_ms();
            if (remaining <= 0.0) break;  // budget exhausted, report last error
            sleep_ms = std::min(sleep_ms, remaining);
        }
        metrics.GetCounter("dfp.serve.client.retries").Inc();
        if (sleep_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(sleep_ms));
        }
    }
    metrics.GetCounter("dfp.serve.client.retry_exhausted").Inc();
    return result;
}

Result<Prediction> ServeClient::Predict(const std::vector<ItemId>& items,
                                        double deadline_ms) {
    std::ostringstream line;
    line << "{\"op\":\"predict\",\"items\":";
    AppendItems(line, items);
    if (deadline_ms >= 0.0) {
        line << ",\"deadline_ms\":";
        obs::WriteJsonNumber(line, deadline_ms);
    }
    line << '}';
    auto response = CallIdempotent(line.str());
    if (!response.ok()) return response.status();
    const obs::JsonValue* label = response->Find("label");
    const obs::JsonValue* version = response->Find("version");
    if (label == nullptr || !label->is_number() || version == nullptr ||
        !version->is_number()) {
        return Status::Internal("predict response missing label/version");
    }
    return Prediction{static_cast<ClassLabel>(label->number()),
                      static_cast<std::uint64_t>(version->number())};
}

Result<std::vector<Prediction>> ServeClient::PredictBatch(
    const std::vector<std::vector<ItemId>>& batch) {
    std::ostringstream line;
    line << "{\"op\":\"predict_batch\",\"batch\":[";
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (i > 0) line << ',';
        AppendItems(line, batch[i]);
    }
    line << "]}";
    auto response = CallIdempotent(line.str());
    if (!response.ok()) return response.status();
    const obs::JsonValue* labels = response->Find("labels");
    const obs::JsonValue* version = response->Find("version");
    if (labels == nullptr || !labels->is_array() || version == nullptr ||
        !version->is_number()) {
        return Status::Internal("predict_batch response missing labels/version");
    }
    const auto model_version = static_cast<std::uint64_t>(version->number());
    std::vector<Prediction> predictions;
    predictions.reserve(labels->array().size());
    for (const obs::JsonValue& label : labels->array()) {
        if (!label.is_number()) {
            return Status::Internal("non-numeric label in response");
        }
        predictions.push_back(
            Prediction{static_cast<ClassLabel>(label.number()), model_version});
    }
    return predictions;
}

Result<std::uint64_t> ServeClient::Reload(const std::string& path) {
    std::ostringstream line;
    line << "{\"op\":\"reload\"";
    if (!path.empty()) {
        line << ",\"path\":";
        obs::WriteJsonString(line, path);
    }
    line << '}';
    auto response = Call(line.str());
    if (!response.ok()) return response.status();
    const obs::JsonValue* version = response->Find("version");
    if (version == nullptr || !version->is_number()) {
        return Status::Internal("reload response missing version");
    }
    return static_cast<std::uint64_t>(version->number());
}

Result<obs::JsonValue> ServeClient::Stats() {
    return Call("{\"op\":\"stats\"}");
}

Result<obs::JsonValue> ServeClient::Health() {
    return CallIdempotent("{\"op\":\"health\"}");
}

Result<bool> ServeClient::Ready() {
    auto response = CallIdempotent("{\"op\":\"ready\"}");
    if (!response.ok()) return response.status();
    const obs::JsonValue* ready = response->Find("ready");
    if (ready == nullptr || ready->kind() != obs::JsonValue::Kind::kBool) {
        return Status::Internal("ready response missing \"ready\"");
    }
    return ready->boolean();
}

Result<std::string> ServeClient::Metrics() {
    auto response = Call("{\"op\":\"metrics\"}");
    if (!response.ok()) return response.status();
    const obs::JsonValue* metrics = response->Find("metrics");
    if (metrics == nullptr || !metrics->is_string()) {
        return Status::Internal("metrics response missing \"metrics\"");
    }
    return metrics->string();
}

Result<obs::JsonValue> ServeClient::TraceDump() {
    auto response = Call("{\"op\":\"trace_dump\"}");
    if (!response.ok()) return response.status();
    const obs::JsonValue* trace = response->Find("trace");
    if (trace == nullptr || !trace->is_object()) {
        return Status::Internal("trace_dump response missing \"trace\"");
    }
    return *trace;
}

}  // namespace dfp::serve
