// Figure 3 — Fisher score and its theoretical upper bound vs. support.
//
// Same protocol as Figure 2 with the Fisher score. The paper's shape: scores
// sit below Fr_ub(θ), which increases monotonically below the class prior and
// diverges as θ → p (we print "inf" in that window).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/bounds.hpp"
#include "core/measures.hpp"
#include "core/pipeline.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

int main(int, char**) {
    std::puts("Figure 3: Fisher score and theoretical upper bound vs support");

    for (const auto& fd : bench::FigureDatasets()) {
        const std::string& name = fd.name;
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        const auto priors = db.ClassPriors();
        const double p = priors[0];
        const std::size_t n = db.num_transactions();
        bench::Section(StrFormat("%s (n=%zu, p=%.3f)", name.c_str(), n, p));

        PipelineConfig config;
        config.miner.min_sup_rel = fd.min_sup_rel * 0.6;
        config.miner.max_pattern_len = 5;
        config.miner.max_patterns = 5'000'000;
        PatternClassifierPipeline pipeline(config);
        auto mined = pipeline.MineCandidates(db);
        if (!mined.ok()) {
            std::printf("mining failed: %s\n", mined.status().ToString().c_str());
            continue;
        }

        const std::size_t buckets = 12;
        std::vector<double> max_fr(buckets, 0.0);
        std::vector<std::size_t> count(buckets, 0);
        std::size_t violations = 0;
        const bool binary = db.num_classes() == 2;
        for (const Pattern& pat : *mined) {
            const auto stats = StatsOfPattern(db, pat);
            const double fr = FisherScore(stats);
            if (std::isinf(fr)) continue;
            const double theta = stats.theta();
            const auto b = std::min(buckets - 1,
                                    static_cast<std::size_t>(theta * buckets));
            max_fr[b] = std::max(max_fr[b], fr);
            count[b]++;
            if (binary && fr > FisherUpperBound(theta, p) + 1e-6) ++violations;
        }

        TablePrinter table(
            {"support range", "#patterns", "max Fr observed", "Fr_ub(mid)"});
        for (std::size_t b = 0; b < buckets; ++b) {
            const double lo = static_cast<double>(b) / buckets;
            const double hi = static_cast<double>(b + 1) / buckets;
            const double mid = 0.5 * (lo + hi);
            const double bound = binary ? FisherUpperBound(mid, p) : -1.0;
            table.AddRow(
                {StrFormat("[%4.0f, %4.0f)", lo * static_cast<double>(n),
                           hi * static_cast<double>(n)),
                 StrFormat("%zu", count[b]),
                 count[b] > 0 ? StrFormat("%.4f", max_fr[b]) : std::string("-"),
                 bound < 0 ? std::string("n/a (multiclass)")
                           : (std::isinf(bound) ? std::string("inf")
                                                : StrFormat("%.4f", bound))});
        }
        table.Print();
        if (binary) {
            std::printf("bound violations: %zu (paper's theorem: 0)\n", violations);
        }
    }
    return 0;
}
