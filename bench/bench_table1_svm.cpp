// Table 1 — SVM accuracy on frequent combined features vs single features.
//
// 19 UCI-shaped datasets × five model variants:
//   Item_All  all single features, linear SVM
//   Item_FS   IG-selected single features, linear SVM
//   Item_RBF  all single features, RBF SVM
//   Pat_All   single features + all mined closed patterns, linear SVM
//   Pat_FS    single features + MMRFS-selected patterns, linear SVM
// Stratified k-fold CV with mining/selection redone per training fold.
//
// Expected shape (paper): Pat_FS wins most rows; Pat_FS > Pat_All (selection
// beats no selection); Pat_FS > Item_RBF. Absolute numbers differ (synthetic
// data, our own SMO) — see EXPERIMENTS.md.
//
// Flags: --folds=N (default 10)
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace dfp;

int main(int argc, char** argv) {
    ExperimentConfig config;
    config.folds = static_cast<std::size_t>(bench::FlagValue(argc, argv, "folds", 10));

    std::printf("Table 1: accuracy by SVM (%zu-fold CV)\n\n", config.folds);
    TablePrinter table({"dataset", "Item_All", "Item_FS", "Item_RBF", "Pat_All",
                        "Pat_FS", "best"});
    std::size_t pat_fs_wins = 0;
    std::size_t pat_fs_beats_pat_all = 0;
    std::size_t rows = 0;
    for (const SyntheticSpec& spec : UciTableSpecs()) {
        const auto db = PrepareTransactions(spec);
        config.min_sup_rel = spec.bench_min_sup;
        const ModelVariant variants[] = {ModelVariant::kItemAll,
                                         ModelVariant::kItemFs,
                                         ModelVariant::kItemRbf,
                                         ModelVariant::kPatAll, ModelVariant::kPatFs};
        double acc[5] = {0, 0, 0, 0, 0};
        std::vector<std::string> cells = {spec.name};
        for (int v = 0; v < 5; ++v) {
            const auto outcome =
                RunVariantCv(db, variants[v], LearnerKind::kSvmLinear, config);
            acc[v] = outcome.ok ? outcome.accuracy : 0.0;
            cells.push_back(outcome.ok ? FormatPercent(outcome.accuracy)
                                       : outcome.error);
        }
        int best = 0;
        for (int v = 1; v < 5; ++v) {
            if (acc[v] > acc[best]) best = v;
        }
        cells.push_back(ModelVariantName(variants[best]));
        table.AddRow(std::move(cells));
        ++rows;
        if (best == 4) ++pat_fs_wins;
        if (acc[4] >= acc[3]) ++pat_fs_beats_pat_all;
        std::fprintf(stderr, "  done %s\n", spec.name.c_str());
    }
    table.Print();
    std::printf("\nshape: Pat_FS best on %zu/%zu datasets;"
                " Pat_FS >= Pat_All on %zu/%zu\n",
                pat_fs_wins, rows, pat_fs_beats_pat_all, rows);
    return 0;
}
