// Ablation — two-step (mine frequent, then select) vs direct branch-and-bound
// top-k discriminative mining (the DDPMine-style follow-up to this paper).
//
// Both produce k pattern features; the direct search explores far fewer nodes
// than full enumeration when the IG bound prunes aggressively, at equal or
// better feature quality.
#include <cstdio>

#include "common/stopwatch.hpp"
#include "core/direct_miner.hpp"
#include "core/feature_space.hpp"
#include "core/mmrfs.hpp"
#include "core/pipeline.hpp"
#include "ml/svm/svm.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

namespace {

double AccuracyWith(const TransactionDatabase& train,
                    const TransactionDatabase& test,
                    std::vector<Pattern> features) {
    const FeatureSpace space =
        FeatureSpace::Build(train.num_items(), std::move(features));
    SvmClassifier svm;
    if (!svm.Train(space.Transform(train), train.labels(), train.num_classes())
             .ok()) {
        return 0.0;
    }
    std::size_t correct = 0;
    std::vector<double> enc(space.dim());
    for (std::size_t t = 0; t < test.num_transactions(); ++t) {
        space.Encode(test.transaction(t), enc);
        if (svm.Predict(enc) == test.label(t)) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(test.num_transactions());
}

}  // namespace

int main(int, char**) {
    std::puts("Ablation: two-step (closed mining + MMRFS) vs direct top-k"
              " discriminative mining\n");
    TablePrinter table({"dataset", "k", "two-step acc %", "direct acc %",
                        "two-step #cand", "direct nodes", "pruned",
                        "two-step s", "direct s"});
    for (const std::string name : {"austral", "breast", "cleve", "heart"}) {
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t r = 0; r < db.num_transactions(); ++r) {
            (r % 5 == 0 ? test_rows : train_rows).push_back(r);
        }
        const auto train = db.Subset(train_rows);
        const auto test = db.Subset(test_rows);

        // Two-step: closed mining + MMRFS.
        Stopwatch watch;
        PipelineConfig pc;
        pc.miner.min_sup_rel = spec->bench_min_sup;
        pc.miner.max_pattern_len = 4;
        PatternClassifierPipeline pipeline(pc);
        auto candidates = pipeline.MineCandidates(train);
        if (!candidates.ok()) continue;
        MmrfsConfig mmrfs;
        mmrfs.coverage_delta = 2;
        const auto selected = SelectPatterns(train, *candidates, mmrfs);
        const double two_step_seconds = watch.ElapsedSeconds();
        const std::size_t k = selected.size();
        const double two_step_acc = AccuracyWith(train, test, selected);

        // Direct: top-k by IG with branch-and-bound.
        watch.Reset();
        DirectMinerConfig dc;
        dc.top_k = k;
        dc.miner.min_sup_rel = spec->bench_min_sup;
        dc.miner.max_pattern_len = 4;
        dc.miner.include_singletons = false;
        DirectMinerStats stats;
        auto direct = MineTopKDiscriminative(train, dc, &stats);
        if (!direct.ok()) continue;
        const double direct_seconds = watch.ElapsedSeconds();
        const double direct_acc = AccuracyWith(train, test, *direct);

        table.AddRow({name, StrFormat("%zu", k), FormatPercent(two_step_acc),
                      FormatPercent(direct_acc),
                      StrFormat("%zu", candidates->size()),
                      StrFormat("%zu", stats.nodes_explored),
                      StrFormat("%zu", stats.nodes_pruned_bound),
                      StrFormat("%.3f", two_step_seconds),
                      StrFormat("%.3f", direct_seconds)});
        std::fprintf(stderr, "  done %s\n", name.c_str());
    }
    table.Print();
    return 0;
}
