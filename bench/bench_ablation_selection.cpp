// Ablation — why MMRFS (relevance + redundancy + coverage) instead of simpler
// selection? Compares, at equal feature budgets:
//   MMRFS        Algorithm 1
//   top-k IG     relevance only, no redundancy control
//   random-k     no signal at all
//   all          no selection (Pat_All)
// on a subset of the UCI-shaped datasets with a linear SVM. Paper's claim:
// redundancy-aware selection beats relevance-only and no-selection.
#include <cstdio>

#include "common/rng.hpp"
#include "core/feature_space.hpp"
#include "core/mmrfs.hpp"
#include "core/pipeline.hpp"
#include "ml/eval/cross_validation.hpp"
#include "ml/svm/svm.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

namespace {

// CV accuracy of a fixed candidate-selection policy.
double EvaluatePolicy(const TransactionDatabase& db,
                      const std::function<std::vector<std::size_t>(
                          const TransactionDatabase&, const std::vector<Pattern>&,
                          std::size_t)>& select,
                      double min_sup_rel, std::size_t folds, std::uint64_t seed,
                      std::size_t* k_out) {
    Rng rng(seed);
    const auto fold_rows = StratifiedFolds(db.labels(), folds, rng);
    double total = 0.0;
    std::size_t evaluated = 0;
    for (std::size_t f = 0; f < folds; ++f) {
        std::vector<std::size_t> train_rows;
        for (std::size_t g = 0; g < folds; ++g) {
            if (g != f) {
                train_rows.insert(train_rows.end(), fold_rows[g].begin(),
                                  fold_rows[g].end());
            }
        }
        const TransactionDatabase train = db.Subset(train_rows);
        PipelineConfig pc;
        pc.miner.min_sup_rel = min_sup_rel;
        pc.miner.max_pattern_len = 5;
        PatternClassifierPipeline pipeline(pc);
        auto mined = pipeline.MineCandidates(train);
        if (!mined.ok()) continue;
        std::vector<Pattern> candidates = std::move(*mined);

        // Reference budget: what MMRFS would pick at δ=4.
        MmrfsConfig mmrfs;
        mmrfs.coverage_delta = 4;
        const std::size_t budget =
            RunMmrfs(train, candidates, mmrfs).selected.size();
        if (k_out != nullptr) *k_out = budget;

        const auto chosen = select(train, candidates, budget);
        std::vector<Pattern> features;
        for (std::size_t idx : chosen) features.push_back(candidates[idx]);
        const FeatureSpace space =
            FeatureSpace::Build(train.num_items(), std::move(features));
        SvmClassifier svm;
        if (!svm.Train(space.Transform(train), train.labels(), db.num_classes())
                 .ok()) {
            continue;
        }
        std::size_t correct = 0;
        std::vector<double> enc(space.dim());
        for (std::size_t t : fold_rows[f]) {
            space.Encode(db.transaction(t), enc);
            if (svm.Predict(enc) == db.label(t)) ++correct;
        }
        total += static_cast<double>(correct) /
                 static_cast<double>(fold_rows[f].size());
        ++evaluated;
    }
    return evaluated == 0 ? 0.0 : total / static_cast<double>(evaluated);
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t folds =
        static_cast<std::size_t>(bench::FlagValue(argc, argv, "folds", 5));
    std::printf("Ablation: feature-selection policy (linear SVM, %zu-fold CV)\n\n",
                folds);
    TablePrinter table(
        {"dataset", "MMRFS", "top-k IG", "random-k", "all (Pat_All)", "k"});
    for (const std::string name :
         {"austral", "breast", "cleve", "heart", "sonar", "vehicle"}) {
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        std::size_t k = 0;

        const double mmrfs_acc = EvaluatePolicy(
            db,
            [](const TransactionDatabase& train,
               const std::vector<Pattern>& candidates, std::size_t) {
                MmrfsConfig config;
                config.coverage_delta = 4;
                return RunMmrfs(train, candidates, config).selected;
            },
            spec->bench_min_sup, folds, 5, &k);
        const double topk_acc = EvaluatePolicy(
            db,
            [](const TransactionDatabase& train,
               const std::vector<Pattern>& candidates, std::size_t budget) {
                return TopKByRelevance(train, candidates,
                                       RelevanceMeasure::kInfoGain, budget);
            },
            spec->bench_min_sup, folds, 5, nullptr);
        const double random_acc = EvaluatePolicy(
            db,
            [](const TransactionDatabase&, const std::vector<Pattern>& candidates,
               std::size_t budget) {
                Rng rng(99);
                std::vector<std::size_t> all(candidates.size());
                for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
                rng.Shuffle(all);
                all.resize(std::min(budget, all.size()));
                return all;
            },
            spec->bench_min_sup, folds, 5, nullptr);
        const double all_acc = EvaluatePolicy(
            db,
            [](const TransactionDatabase&, const std::vector<Pattern>& candidates,
               std::size_t) {
                std::vector<std::size_t> all(candidates.size());
                for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
                return all;
            },
            spec->bench_min_sup, folds, 5, nullptr);

        table.AddRow({name, FormatPercent(mmrfs_acc), FormatPercent(topk_acc),
                      FormatPercent(random_acc), FormatPercent(all_acc),
                      StrFormat("%zu", k)});
        std::fprintf(stderr, "  done %s\n", name.c_str());
    }
    table.Print();
    return 0;
}
