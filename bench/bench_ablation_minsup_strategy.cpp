// Ablation — the Section 3.2 min_sup strategy vs a fixed min_sup grid.
//
// For each IG0 threshold the strategy maps to θ*; we run Pat_FS at θ* and
// compare against a naive fixed grid. The point (paper §3.2): θ* tracks the
// sweet spot — low enough to keep discriminative patterns, high enough to
// keep mining and selection cheap — without per-dataset tuning.
#include <cstdio>

#include "common/stopwatch.hpp"
#include "core/minsup_strategy.hpp"
#include "core/pipeline.hpp"
#include "ml/svm/svm.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

namespace {

struct Point {
    double min_sup_rel;
    std::size_t candidates;
    double seconds;
    double accuracy;
};

Point RunAt(const TransactionDatabase& train, const TransactionDatabase& test,
            double min_sup_rel) {
    PipelineConfig config;
    config.miner.min_sup_rel = min_sup_rel;
    config.miner.max_pattern_len = 5;
    config.miner.max_patterns = 3'000'000;
    config.mmrfs.coverage_delta = 4;
    PatternClassifierPipeline pipeline(config);
    Stopwatch watch;
    Point point{min_sup_rel, 0, 0.0, 0.0};
    if (pipeline.Train(train, std::make_unique<SvmClassifier>()).ok()) {
        point.seconds = watch.ElapsedSeconds();
        point.candidates = pipeline.stats().num_candidates;
        point.accuracy = pipeline.Accuracy(test);
    }
    return point;
}

}  // namespace

int main(int, char**) {
    std::puts("Ablation: IG0 -> theta* strategy vs fixed min_sup grid (linear SVM)\n");
    for (const std::string name : {"austral", "breast", "heart"}) {
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t r = 0; r < db.num_transactions(); ++r) {
            (r % 5 == 0 ? test_rows : train_rows).push_back(r);
        }
        const auto train = db.Subset(train_rows);
        const auto test = db.Subset(test_rows);
        bench::Section(name);

        TablePrinter strategy({"IG0", "theta*", "#cand", "time s", "acc %"});
        for (double ig0 : {0.01, 0.03, 0.05, 0.10, 0.20}) {
            const auto rec =
                RecommendMinSup(ig0, train.ClassPriors(), train.num_transactions());
            const Point point = RunAt(train, test, rec.theta_star);
            strategy.AddRow({StrFormat("%.2f", ig0),
                             StrFormat("%.4f", rec.theta_star),
                             StrFormat("%zu", point.candidates),
                             StrFormat("%.3f", point.seconds),
                             FormatPercent(point.accuracy)});
        }
        std::puts("strategy-driven (choose IG0, derive theta*):");
        strategy.Print();

        TablePrinter fixed({"min_sup", "#cand", "time s", "acc %"});
        for (double min_sup : {0.02, 0.05, 0.10, 0.20, 0.40}) {
            const Point point = RunAt(train, test, min_sup);
            fixed.AddRow({StrFormat("%.2f", min_sup),
                          StrFormat("%zu", point.candidates),
                          StrFormat("%.3f", point.seconds),
                          FormatPercent(point.accuracy)});
        }
        std::puts("fixed grid (tune by hand):");
        fixed.Print();
    }
    return 0;
}
