// Significance-filter sweep (BENCH_significance.json, EXPERIMENTS.md):
//
// On the standard 4000×30 corpus (planted-pattern synthetic: 10 categorical
// attributes × arity 3 → 30 items, hidden concepts + XOR templates +
// class-neutral background correlation, 80/20 split) measure what the
// statistical-significance stage (DESIGN.md §18) does to the selected
// feature set and to held-out accuracy:
//
//   baseline          sig_test=none — today's MMRFS-only path
//   chi2 / fisher     × alpha ∈ {0.5, 0.05, 0.01}
//                     × correction ∈ {none, bonferroni, bh}
//
// Candidates are mined once and every configuration reuses them through
// TrainWithCandidates, so the sweep isolates the filter: any change in
// |Fs| or accuracy is the filter's doing. Per-cell gauges land as
//   dfp.bench.stats.<test>_<correction>_a<alpha>.{rejected,selected,accuracy}
// plus dfp.bench.stats.baseline.{selected,accuracy} for tools/bench_diff.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "exp/table_printer.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "obs/metrics.hpp"
#include "stats/significance.hpp"

using namespace dfp;

namespace {

/// 4000 rows × 30 items with planted discriminative structure and enough
/// class-neutral background correlation that the miner emits frequent but
/// label-independent patterns — the population the filter exists to reject.
TransactionDatabase Corpus() {
    SyntheticSpec spec;
    spec.name = "bench_significance";
    spec.rows = 4000;
    spec.attributes = 10;
    spec.arity = 3;
    spec.classes = 2;
    spec.patterns_per_class = 3;
    spec.xor_patterns_per_class = 2;
    spec.label_noise = 0.05;
    spec.background_prob = 0.30;
    spec.seed = 11;
    const Dataset data = GenerateSynthetic(spec);
    const auto encoder = ItemEncoder::FromSchema(data);
    return TransactionDatabase::FromDataset(data, *encoder);
}

std::string AlphaTag(double alpha) {
    // 0.05 -> "a0.05" (gauge-name friendly, no trailing zeros).
    return "a" + StrFormat("%g", alpha);
}

}  // namespace

int main(int argc, char** argv) {
    const auto threads = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "threads", 1));
    bench::BeginBenchObservability(threads);
    auto& registry = obs::Registry::Get();

    bench::Section("Significance sweep: 4000x30 planted-pattern corpus");
    const auto db = Corpus();
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t r = 0; r < db.num_transactions(); ++r) {
        (r % 5 == 0 ? test_rows : train_rows).push_back(r);
    }
    const auto train = db.Subset(train_rows);
    const auto test = db.Subset(test_rows);
    std::printf("train %zu rows / test %zu rows, %zu items\n",
                train.num_transactions(), test.num_transactions(),
                train.num_items());

    PipelineConfig base_config;
    base_config.miner.min_sup_rel = 0.10;
    base_config.miner.max_pattern_len = 4;
    base_config.mmrfs.coverage_delta = 4;
    base_config.num_threads = threads;

    // Mine once; every configuration reruns only significance → MMRFS →
    // transform → learn on the identical candidate pool.
    Stopwatch mine_watch;
    auto candidates = PatternClassifierPipeline(base_config)
                          .MineCandidates(train);
    if (!candidates.ok()) {
        std::fprintf(stderr, "mining failed: %s\n",
                     candidates.status().ToString().c_str());
        return 1;
    }
    std::printf("mined %zu candidates in %.2fs\n", candidates->size(),
                mine_watch.ElapsedSeconds());

    TablePrinter table({"test", "correction", "alpha", "rejected", "|Fs|",
                        "held-out acc", "train s"});
    auto run_cell = [&](SigTest sig_test, Correction correction,
                        double alpha) -> bool {
        PipelineConfig config = base_config;
        config.significance.test = sig_test;
        config.significance.alpha = alpha;
        config.significance.correction = correction;
        PatternClassifierPipeline pipeline(config);
        Stopwatch watch;
        const Status st = pipeline.TrainWithCandidates(
            train, *candidates, std::make_unique<NaiveBayesClassifier>());
        if (!st.ok()) {
            std::fprintf(stderr, "train failed: %s\n", st.ToString().c_str());
            return false;
        }
        const double seconds = watch.ElapsedSeconds();
        const double accuracy = pipeline.Accuracy(test);
        const auto& stats = pipeline.stats();
        const bool is_baseline = sig_test == SigTest::kNone;
        table.AddRow({SigTestName(sig_test),
                      is_baseline ? "-" : CorrectionName(correction),
                      is_baseline ? "-" : StrFormat("%g", alpha),
                      std::to_string(stats.num_sig_rejected),
                      std::to_string(stats.num_selected),
                      StrFormat("%.4f", accuracy), StrFormat("%.2f", seconds)});
        const std::string prefix =
            is_baseline ? "dfp.bench.stats.baseline"
                        : StrFormat("dfp.bench.stats.%s_%s_%s",
                                    SigTestName(sig_test),
                                    CorrectionName(correction),
                                    AlphaTag(alpha).c_str());
        if (!is_baseline) {
            registry.GetGauge(prefix + ".rejected")
                .Set(static_cast<double>(stats.num_sig_rejected));
        }
        registry.GetGauge(prefix + ".selected")
            .Set(static_cast<double>(stats.num_selected));
        registry.GetGauge(prefix + ".accuracy").Set(accuracy);
        return true;
    };

    // MMRFS-only baseline, then the full test × correction × alpha grid.
    if (!run_cell(SigTest::kNone, Correction::kNone, 0.05)) return 1;
    for (SigTest sig_test : {SigTest::kChi2, SigTest::kFisher}) {
        for (Correction correction : {Correction::kNone, Correction::kBonferroni,
                                      Correction::kBenjaminiHochberg}) {
            for (double alpha : {0.5, 0.05, 0.01}) {
                if (!run_cell(sig_test, correction, alpha)) return 1;
            }
        }
    }
    table.Print();

    bench::WriteBenchReport("significance");
    return 0;
}
