// Serving-path benchmark (BENCH_serving.json):
//
//  1. Inverted-index micro-bench — PatternMatchIndex::CountMatches vs the
//     naive per-pattern std::includes scan FeatureSpace::Encode does, on the
//     trained feature space. The index must be ≥ 3× the naive matcher.
//  2. Closed-loop TCP load — dfp_serve's stack (registry → engine → server)
//     on a loopback ephemeral port, hammered by 1 / 4 / 16 concurrent
//     connections issuing predict_batch requests of 64 transactions.
//     Per-request latency quantiles (p50/p95/p99) and end-to-end prediction
//     throughput land in the report as
//       dfp.bench.serving.c<k>.{p50_ms,p95_ms,p99_ms,preds_per_s}
//     plus dfp.bench.serving.index_speedup for the micro-bench.
//  3. Soak — sustained mixed traffic for --soak-seconds (default 4): 8
//     connections of single-predict requests (the traced, micro-batched
//     path) while a control thread hot-reloads the model twice a second.
//     Soak clients run the production retry policy; shed rate, client retry
//     rate, failpoint trips (gated to zero — injection must never leak into
//     the measured path), the engine's trailing-window p99.9, and throughput
//     land as dfp.bench.serving.soak.{shed_rate,retry_rate,failpoint_trips,
//     p999_ms,preds_per_s,reloads} (tools/bench_diff compares them against
//     bench/baselines/serving.json).
//
// Corpus: the 4000×30 dense synthetic corpus the parallel-mining bench uses,
// so serving numbers sit next to mining numbers measured on the same data.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "exp/table_printer.hpp"
#include "ml/nb/naive_bayes.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/scoring_index.hpp"
#include "serve/server.hpp"

using namespace dfp;

namespace {

TransactionDatabase DenseCorpus(std::size_t rows, std::size_t items,
                                double density, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(rows);
    std::vector<ClassLabel> labels(rows);
    for (std::size_t t = 0; t < rows; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % items));
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), items, 2);
}

/// Naive matcher: exactly the per-pattern std::includes scan the offline
/// FeatureSpace::Encode runs — the baseline the index must beat.
std::size_t NaiveCountMatches(const FeatureSpace& space,
                              const std::vector<ItemId>& txn) {
    std::size_t matches = 0;
    for (const Pattern& p : space.patterns()) {
        if (std::includes(txn.begin(), txn.end(), p.items.begin(),
                          p.items.end())) {
            ++matches;
        }
    }
    return matches;
}

double Quantile(std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

struct LoadResult {
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double preds_per_s = 0;
    std::size_t predictions = 0;
};

/// Closed loop: each connection issues `requests_per_conn` predict_batch
/// calls of `batch_size` transactions back to back; latency is client-side
/// per request.
LoadResult RunLoadPhase(std::uint16_t port, const TransactionDatabase& db,
                        std::size_t connections, std::size_t requests_per_conn,
                        std::size_t batch_size) {
    std::vector<std::vector<double>> latencies(connections);
    std::atomic<std::size_t> failures{0};
    Stopwatch wall;
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < connections; ++c) {
        workers.emplace_back([&, c] {
            auto client = serve::ServeClient::Connect("127.0.0.1", port);
            if (!client.ok()) {
                failures.fetch_add(requests_per_conn);
                return;
            }
            latencies[c].reserve(requests_per_conn);
            for (std::size_t r = 0; r < requests_per_conn; ++r) {
                std::vector<std::vector<ItemId>> batch;
                batch.reserve(batch_size);
                for (std::size_t b = 0; b < batch_size; ++b) {
                    const std::size_t t =
                        (c * 131 + r * batch_size + b) % db.num_transactions();
                    batch.push_back(db.transaction(t));
                }
                Stopwatch request;
                auto predictions = client->PredictBatch(batch);
                if (!predictions.ok() || predictions->size() != batch_size) {
                    failures.fetch_add(1);
                    continue;
                }
                latencies[c].push_back(request.ElapsedMillis());
            }
        });
    }
    for (auto& worker : workers) worker.join();
    const double seconds = wall.ElapsedSeconds();

    std::vector<double> all;
    for (const auto& per_conn : latencies) {
        all.insert(all.end(), per_conn.begin(), per_conn.end());
    }
    std::sort(all.begin(), all.end());
    LoadResult result;
    result.predictions = all.size() * batch_size;
    result.p50_ms = Quantile(all, 0.50);
    result.p95_ms = Quantile(all, 0.95);
    result.p99_ms = Quantile(all, 0.99);
    result.preds_per_s =
        seconds > 0.0 ? static_cast<double>(result.predictions) / seconds : 0.0;
    if (failures.load() > 0) {
        std::fprintf(stderr, "[bench] %zu failed requests in c%zu phase\n",
                     failures.load(), connections);
    }
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const auto threads = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "threads", 1));
    const auto requests_per_conn = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "requests", 40));
    const long soak_seconds = bench::FlagValue(argc, argv, "soak-seconds", 4);
    bench::BeginBenchObservability(threads);
    auto& registry = obs::Registry::Get();

    bench::Section("Serving benchmark: 4000x30 dense corpus");
    const auto db = DenseCorpus(4000, 30, 0.40, 11);

    // Train the model once; everything downstream scores with it.
    PipelineConfig config;
    config.miner.min_sup_rel = 0.05;
    config.miner.max_pattern_len = 4;
    config.mmrfs.coverage_delta = 4;
    PatternClassifierPipeline pipeline(config);
    {
        Stopwatch train;
        const Status st =
            pipeline.Train(db, std::make_unique<NaiveBayesClassifier>());
        if (!st.ok()) {
            std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
            return 1;
        }
        std::printf("trained: %zu candidates -> %zu patterns in %.2fs\n",
                    pipeline.stats().num_candidates,
                    pipeline.stats().num_selected, train.ElapsedSeconds());
    }
    const std::string model_path =
        "/tmp/dfp_bench_serving_" + std::to_string(::getpid()) + ".dfp";
    if (!SavePipelineModelToFile(pipeline, model_path).ok()) {
        std::fprintf(stderr, "model save failed\n");
        return 1;
    }

    // --- Phase 1: inverted index vs naive matching -------------------------
    bench::Section("Inverted-index matching vs naive std::includes");
    const FeatureSpace& space = pipeline.feature_space();
    const serve::PatternMatchIndex index = serve::PatternMatchIndex::Build(space);
    serve::PatternMatchIndex::Scratch scratch;
    constexpr std::size_t kMatchRounds = 20;

    std::size_t naive_matches = 0;
    Stopwatch naive_watch;
    for (std::size_t round = 0; round < kMatchRounds; ++round) {
        for (std::size_t t = 0; t < db.num_transactions(); ++t) {
            naive_matches += NaiveCountMatches(space, db.transaction(t));
        }
    }
    const double naive_seconds = naive_watch.ElapsedSeconds();

    std::size_t indexed_matches = 0;
    Stopwatch indexed_watch;
    for (std::size_t round = 0; round < kMatchRounds; ++round) {
        for (std::size_t t = 0; t < db.num_transactions(); ++t) {
            indexed_matches += index.CountMatches(db.transaction(t), &scratch);
        }
    }
    const double indexed_seconds = indexed_watch.ElapsedSeconds();

    if (naive_matches != indexed_matches) {
        std::fprintf(stderr, "MATCH MISMATCH: naive %zu vs indexed %zu\n",
                     naive_matches, indexed_matches);
        return 1;
    }
    const double speedup =
        indexed_seconds > 0.0 ? naive_seconds / indexed_seconds : 0.0;
    std::printf("patterns=%zu postings=%zu matches=%zu\n", index.num_patterns(),
                index.num_postings(), indexed_matches / kMatchRounds);
    std::printf("naive   : %.3fs (%.0f txn/s)\n", naive_seconds,
                kMatchRounds * db.num_transactions() / naive_seconds);
    std::printf("indexed : %.3fs (%.0f txn/s)\n", indexed_seconds,
                kMatchRounds * db.num_transactions() / indexed_seconds);
    std::printf("speedup : %.1fx (acceptance floor 3x)\n", speedup);
    registry.GetGauge("dfp.bench.serving.index_speedup").Set(speedup);
    registry.GetGauge("dfp.bench.serving.patterns")
        .Set(static_cast<double>(index.num_patterns()));

    // --- Phase 2: closed-loop TCP load at 1 / 4 / 16 connections -----------
    bench::Section("TCP load (predict_batch of 64 per request)");
    serve::ModelRegistry model_registry;
    auto loaded = model_registry.Reload(model_path);
    if (!loaded.ok()) {
        std::fprintf(stderr, "reload failed: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
    }
    serve::EngineConfig engine_config;
    engine_config.num_threads = threads;
    engine_config.max_delay_ms = 0.2;
    serve::ScoringEngine engine(model_registry, engine_config);
    serve::ServerConfig server_config;
    server_config.port = 0;  // ephemeral: benches never collide
    server_config.max_connections = 64;
    serve::PredictionServer server(model_registry, engine, server_config,
                                   model_path);
    const Status started = server.Start();
    if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.ToString().c_str());
        return 1;
    }

    TablePrinter table({"connections", "requests", "predictions", "p50 ms",
                        "p95 ms", "p99 ms", "preds/s"});
    for (std::size_t connections : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
        const LoadResult result =
            RunLoadPhase(server.port(), db, connections, requests_per_conn, 64);
        table.AddRow({std::to_string(connections),
                      std::to_string(connections * requests_per_conn),
                      std::to_string(result.predictions),
                      StrFormat("%.2f", result.p50_ms),
                      StrFormat("%.2f", result.p95_ms),
                      StrFormat("%.2f", result.p99_ms),
                      StrFormat("%.0f", result.preds_per_s)});
        const std::string prefix =
            "dfp.bench.serving.c" + std::to_string(connections);
        registry.GetGauge(prefix + ".p50_ms").Set(result.p50_ms);
        registry.GetGauge(prefix + ".p95_ms").Set(result.p95_ms);
        registry.GetGauge(prefix + ".p99_ms").Set(result.p99_ms);
        registry.GetGauge(prefix + ".preds_per_s").Set(result.preds_per_s);
    }
    table.Print();

    // --- Phase 3: soak — sustained predicts under concurrent reloads -------
    bench::Section(StrFormat("Soak: %lds of mixed predict + reload traffic",
                             soak_seconds));
    {
        const auto base = registry.Snapshot();
        const std::uint64_t base_requests = [&] {
            const auto it = base.counters.find("dfp.serve.requests");
            return it == base.counters.end() ? std::uint64_t{0} : it->second;
        }();
        const std::uint64_t base_shed = [&] {
            const auto it = base.counters.find("dfp.serve.shed");
            return it == base.counters.end() ? std::uint64_t{0} : it->second;
        }();
        const std::uint64_t base_retries = [&] {
            const auto it = base.counters.find("dfp.serve.client.retries");
            return it == base.counters.end() ? std::uint64_t{0} : it->second;
        }();

        std::atomic<bool> soak_stop{false};
        std::atomic<std::size_t> soak_ok{0};
        std::atomic<std::size_t> reloads{0};
        constexpr std::size_t kSoakConnections = 8;
        std::vector<std::thread> soakers;
        // Soak clients run the production retry policy (DESIGN.md §15):
        // transient transport hiccups around the twice-a-second reloads are
        // absorbed, and the retry rate itself is a gated health metric — a
        // serving regression that manifests as retry churn fails the gate
        // even if every request eventually succeeds.
        serve::RetryPolicy soak_retry;
        soak_retry.max_attempts = 4;
        soak_retry.initial_backoff_ms = 1.0;
        soak_retry.max_backoff_ms = 20.0;
        soak_retry.deadline_ms = 1000.0;
        for (std::size_t c = 0; c < kSoakConnections; ++c) {
            soakers.emplace_back([&, c] {
                auto client = serve::ServeClient::Connect(
                    "127.0.0.1", server.port(), soak_retry);
                if (!client.ok()) return;
                std::size_t r = 0;
                while (!soak_stop.load(std::memory_order_relaxed)) {
                    const std::size_t t =
                        (c * 977 + r * 13) % db.num_transactions();
                    if (client->Predict(db.transaction(t)).ok()) {
                        soak_ok.fetch_add(1, std::memory_order_relaxed);
                    }
                    ++r;
                }
            });
        }
        std::thread reloader([&] {
            auto client = serve::ServeClient::Connect("127.0.0.1", server.port());
            if (!client.ok()) return;
            while (!soak_stop.load(std::memory_order_relaxed)) {
                if (client->Reload().ok()) {
                    reloads.fetch_add(1, std::memory_order_relaxed);
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(500));
            }
        });
        Stopwatch soak_wall;
        std::this_thread::sleep_for(std::chrono::seconds(soak_seconds));
        soak_stop.store(true);
        for (auto& worker : soakers) worker.join();
        reloader.join();
        const double seconds = soak_wall.ElapsedSeconds();

        const auto after = registry.Snapshot();
        const auto requests = [&](const std::string& name) {
            const auto it = after.counters.find(name);
            return it == after.counters.end() ? std::uint64_t{0} : it->second;
        };
        const std::uint64_t submitted = requests("dfp.serve.requests") - base_requests;
        const std::uint64_t shed = requests("dfp.serve.shed") - base_shed;
        const double shed_rate =
            submitted > 0 ? static_cast<double>(shed) /
                                static_cast<double>(submitted)
                          : 0.0;
        // The trailing-window quantile the live /metrics endpoint would
        // report right now — the whole point of the soak phase.
        double p999 = 0.0;
        if (const auto it = after.windows.find("dfp.serve.latency.total");
            it != after.windows.end()) {
            p999 = it->second.ValueAtQuantile(0.999);
        }
        const double preds_per_s =
            seconds > 0.0 ? static_cast<double>(soak_ok.load()) / seconds : 0.0;
        const std::uint64_t retries =
            requests("dfp.serve.client.retries") - base_retries;
        const double retry_rate =
            soak_ok.load() > 0 ? static_cast<double>(retries) /
                                     static_cast<double>(soak_ok.load())
                               : 0.0;
        std::printf("soak: %zu ok, %llu shed (rate %.4f), %zu reloads\n",
                    soak_ok.load(), static_cast<unsigned long long>(shed),
                    shed_rate, reloads.load());
        std::printf("soak: %llu client retries (rate %.4f)\n",
                    static_cast<unsigned long long>(retries), retry_rate);
        std::printf("soak: windowed p99.9 = %.3f ms, %.0f preds/s\n", p999,
                    preds_per_s);
        registry.GetGauge("dfp.bench.serving.soak.shed_rate").Set(shed_rate);
        registry.GetGauge("dfp.bench.serving.soak.retry_rate").Set(retry_rate);
        registry.GetGauge("dfp.bench.serving.soak.p999_ms").Set(p999);
        registry.GetGauge("dfp.bench.serving.soak.preds_per_s").Set(preds_per_s);
        registry.GetGauge("dfp.bench.serving.soak.reloads")
            .Set(static_cast<double>(reloads.load()));
        // No failpoint is ever armed in the bench: a nonzero trip count means
        // injection leaked into the measured path (gated to exactly zero).
        registry.GetGauge("dfp.bench.serving.soak.failpoint_trips")
            .Set(static_cast<double>(FailpointRegistry::Get().TotalTrips()));
    }

    server.Stop();
    engine.Stop();
    std::remove(model_path.c_str());

    bench::WriteBenchReport("serving");
    return 0;
}
