// Streaming-path benchmark (BENCH_stream.json):
//
//  1. Ingest throughput — StreamingDatabase::Append plus incremental CanTree
//     maintenance (insert + evict) over a sliding window, measured in rows/s
//     on a pre-generated drifting stream (generation is excluded).
//       dfp.bench.stream.ingest_rows_per_s
//  2. Window mining: remine vs incremental — both WindowMiner strategies mine
//     the same sliding window at every checkpoint while the stream advances;
//     total mine time per strategy and the speedup land as
//       dfp.bench.stream.{remine_mine_ms,incremental_mine_ms,mine_speedup}.
//     This is the measurement behind the ContinuousTrainerConfig default
//     (window_miner = kIncremental); the golden-equivalence suite certifies
//     the two strategies emit identical pattern sets.
//  3. Retrain latency + staleness — a full ContinuousTrainer loop (stream →
//     mine → select → train → save → hot reload through ModelRegistry) on a
//     row-count schedule, run serial then with the pipeline's worker threads
//     opened up (--threads=, default 4); the end-to-end retrain latency, its
//     threaded counterpart and the staleness of the replaced model at swap
//     time land as dfp.bench.stream.{retrain_seconds,
//     retrain_seconds_threaded,retrain_threads_speedup,staleness_seconds,
//     retrains}.
//
// tools/bench_diff gates these against bench/baselines/stream.json.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "exp/table_printer.hpp"
#include "obs/metrics.hpp"
#include "serve/registry.hpp"
#include "stream/streaming_db.hpp"
#include "stream/trainer.hpp"
#include "stream/window_miner.hpp"
#include "testutil/drift_source.hpp"

using namespace dfp;

namespace {

void Canonicalize(stream::TransactionBatch* batch) {
    for (auto& txn : batch->transactions) {
        std::sort(txn.begin(), txn.end());
        txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    }
}

}  // namespace

int main(int argc, char** argv) {
    const auto stream_rows = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "rows", 20000));
    const auto window_capacity = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "window", 2048));
    bench::BeginBenchObservability(1);
    auto& registry = obs::Registry::Get();

    bench::Section(StrFormat("Stream benchmark: %zu rows, window %zu",
                             stream_rows, window_capacity));
    testutil::DriftSourceConfig source_config;
    source_config.num_phases = 4;
    source_config.rows_per_phase = (stream_rows + 3) / 4;
    source_config.eval_rows = 16;
    source_config.attributes = 10;
    source_config.arity = 3;
    source_config.seed = 29;
    testutil::DriftSource source(source_config);
    std::printf("source: %zu phases x %zu rows, %zu items\n",
                source_config.num_phases, source_config.rows_per_phase,
                source.num_items());

    MinerConfig mine_config;
    mine_config.min_sup_rel = 0.10;
    mine_config.max_pattern_len = 4;
    mine_config.include_singletons = false;

    // --- Phase 1+2: ingest throughput and remine-vs-incremental mining -----
    bench::Section("Ingest + window mining (remine vs incremental)");
    stream::StreamConfig stream_config;
    stream_config.num_items = source.num_items();
    stream_config.num_classes = source.num_classes();
    stream_config.window_capacity = window_capacity;
    auto db = stream::StreamingDatabase::Create(stream_config);
    if (!db.ok()) {
        std::fprintf(stderr, "stream create failed: %s\n",
                     db.status().ToString().c_str());
        return 1;
    }
    auto remine =
        stream::MakeWindowMiner(stream::WindowMinerKind::kRemine,
                                source.num_items());
    auto incremental =
        stream::MakeWindowMiner(stream::WindowMinerKind::kIncremental,
                                source.num_items());

    // Pre-generate canonical batches so the timed loop measures ingestion,
    // not synthesis.
    constexpr std::size_t kBatch = 256;
    std::vector<stream::TransactionBatch> batches;
    while (!source.exhausted()) {
        batches.push_back(source.NextBatch(kBatch));
        Canonicalize(&batches.back());
    }

    double ingest_seconds = 0.0;
    double remine_seconds = 0.0;
    double incremental_seconds = 0.0;
    std::size_t checkpoints = 0;
    std::size_t patterns_last = 0;
    std::size_t ingested = 0;
    const std::size_t checkpoint_every =
        std::max<std::size_t>(1, window_capacity / (2 * kBatch));
    for (std::size_t b = 0; b < batches.size(); ++b) {
        Stopwatch ingest;
        auto appended = (*db)->Append(batches[b]);
        if (!appended.ok()) {
            std::fprintf(stderr, "append failed: %s\n",
                         appended.status().ToString().c_str());
            return 1;
        }
        for (const auto& txn : batches[b].transactions) {
            incremental->Insert(txn);
        }
        for (const auto& txn : appended->evicted.transactions) {
            incremental->Evict(txn);
        }
        ingest_seconds += ingest.ElapsedSeconds();
        ingested += batches[b].size();
        // The remine strategy keeps its own window copy; its maintenance is
        // trivial (deque push/pop) and is excluded from the ingest figure.
        for (const auto& txn : batches[b].transactions) remine->Insert(txn);
        for (const auto& txn : appended->evicted.transactions) {
            remine->Evict(txn);
        }

        if ((*db)->window_size() < window_capacity) continue;
        if (b % checkpoint_every != 0) continue;
        ++checkpoints;
        Stopwatch remine_watch;
        auto from_remine = remine->MineWindow(mine_config);
        remine_seconds += remine_watch.ElapsedSeconds();
        Stopwatch incremental_watch;
        auto from_incremental = incremental->MineWindow(mine_config);
        incremental_seconds += incremental_watch.ElapsedSeconds();
        if (!from_remine.ok() || !from_incremental.ok()) {
            std::fprintf(stderr, "window mine failed\n");
            return 1;
        }
        if (from_remine->size() != from_incremental->size()) {
            std::fprintf(stderr, "PATTERN COUNT MISMATCH: remine %zu vs %zu\n",
                         from_remine->size(), from_incremental->size());
            return 1;
        }
        patterns_last = from_incremental->size();
    }
    const double ingest_rows_per_s =
        ingest_seconds > 0.0 ? static_cast<double>(ingested) / ingest_seconds
                             : 0.0;
    const double mine_speedup =
        incremental_seconds > 0.0 ? remine_seconds / incremental_seconds : 0.0;
    std::printf("ingest  : %zu rows in %.3fs (%.0f rows/s)\n", ingested,
                ingest_seconds, ingest_rows_per_s);
    std::printf("mining  : %zu checkpoints, %zu patterns at the last\n",
                checkpoints, patterns_last);
    std::printf("remine      : %.3fs total (%.2f ms/mine)\n", remine_seconds,
                1e3 * remine_seconds / static_cast<double>(checkpoints));
    std::printf("incremental : %.3fs total (%.2f ms/mine)\n",
                incremental_seconds,
                1e3 * incremental_seconds / static_cast<double>(checkpoints));
    std::printf("speedup     : %.2fx (remine / incremental)\n", mine_speedup);
    registry.GetGauge("dfp.bench.stream.ingest_rows_per_s")
        .Set(ingest_rows_per_s);
    registry.GetGauge("dfp.bench.stream.remine_mine_ms")
        .Set(1e3 * remine_seconds / static_cast<double>(checkpoints));
    registry.GetGauge("dfp.bench.stream.incremental_mine_ms")
        .Set(1e3 * incremental_seconds / static_cast<double>(checkpoints));
    registry.GetGauge("dfp.bench.stream.mine_speedup").Set(mine_speedup);

    // --- Phase 3: end-to-end retrain latency + staleness --------------------
    // Run the full trainer loop twice: serial pipeline, then the pipeline's
    // worker threads opened up (--threads=, default 4) — the retrained models
    // are thread-count-invariant (DESIGN.md §17), so the delta is pure
    // retrain-latency. Both land in the report:
    //   dfp.bench.stream.retrain_seconds          (serial, the gated gauge)
    //   dfp.bench.stream.retrain_seconds_threaded (threads = N)
    //   dfp.bench.stream.retrain_threads_speedup  (serial / threaded)
    bench::Section("Continuous retraining (schedule every window/2 rows)");
    struct RetrainRun {
        std::size_t retrains = 0;
        double avg_seconds = 0.0;
        double staleness = 0.0;
        std::uint64_t version = 0;
    };
    auto run_retrain_phase = [&](std::size_t threads,
                                 RetrainRun* out) -> bool {
        source.Reset();
        auto db2 = stream::StreamingDatabase::Create(stream_config);
        serve::ModelRegistry model_registry;
        stream::ContinuousTrainerConfig trainer_config;
        trainer_config.pipeline.miner = mine_config;
        trainer_config.pipeline.mmrfs.coverage_delta = 2;
        trainer_config.pipeline.num_threads = threads;
        trainer_config.learner_type = "nb";
        trainer_config.retrain_every = window_capacity / 2;
        trainer_config.drift_trigger = false;
        trainer_config.min_window = window_capacity / 2;
        trainer_config.model_dir = "/tmp/dfp_bench_stream_" +
                                   std::to_string(::getpid()) + "_t" +
                                   std::to_string(threads);
        auto trainer = stream::ContinuousTrainer::Create(
            trainer_config, db2->get(), &model_registry);
        if (!trainer.ok()) {
            std::fprintf(stderr, "trainer create failed: %s\n",
                         trainer.status().ToString().c_str());
            return false;
        }
        double retrain_seconds_total = 0.0;
        while (!source.exhausted()) {
            stream::TransactionBatch batch = source.NextBatch(kBatch);
            if (!(*trainer)->Ingest(std::move(batch)).ok()) {
                std::fprintf(stderr, "ingest failed\n");
                return false;
            }
            auto pumped = (*trainer)->MaybeRetrain();
            if (!pumped.ok()) {
                std::fprintf(stderr, "retrain failed: %s\n",
                             pumped.status().ToString().c_str());
                return false;
            }
            if (*pumped) {
                retrain_seconds_total +=
                    (*trainer)->stats().last_retrain_seconds;
            }
        }
        const stream::TrainerStats stats = (*trainer)->stats();
        out->retrains = stats.retrains;
        out->avg_seconds =
            stats.retrains > 0
                ? retrain_seconds_total / static_cast<double>(stats.retrains)
                : 0.0;
        out->version = stats.last_model_version;
        // Staleness of the replaced model at the last swap, as exported by
        // the trainer itself (dfp.stream.staleness_seconds).
        const auto snap = registry.Snapshot();
        if (const auto it = snap.gauges.find("dfp.stream.staleness_seconds");
            it != snap.gauges.end()) {
            out->staleness = it->second;
        }
        return true;
    };
    const auto retrain_threads = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "threads", 4));
    RetrainRun serial_run;
    RetrainRun threaded_run;
    if (!run_retrain_phase(1, &serial_run)) return 1;
    if (!run_retrain_phase(retrain_threads, &threaded_run)) return 1;
    const double retrain_speedup =
        threaded_run.avg_seconds > 0.0
            ? serial_run.avg_seconds / threaded_run.avg_seconds
            : 1.0;
    TablePrinter table({"threads", "retrains", "avg retrain s", "staleness s",
                        "model version"});
    table.AddRow({"1", std::to_string(serial_run.retrains),
                  StrFormat("%.3f", serial_run.avg_seconds),
                  StrFormat("%.3f", serial_run.staleness),
                  std::to_string(serial_run.version)});
    table.AddRow({std::to_string(retrain_threads),
                  std::to_string(threaded_run.retrains),
                  StrFormat("%.3f", threaded_run.avg_seconds),
                  StrFormat("%.3f", threaded_run.staleness),
                  std::to_string(threaded_run.version)});
    table.Print();
    std::printf("retrain speedup at %zu threads: %.2fx\n", retrain_threads,
                retrain_speedup);
    registry.GetGauge("dfp.bench.stream.retrains")
        .Set(static_cast<double>(serial_run.retrains));
    registry.GetGauge("dfp.bench.stream.retrain_seconds")
        .Set(serial_run.avg_seconds);
    registry.GetGauge("dfp.bench.stream.retrain_seconds_threaded")
        .Set(threaded_run.avg_seconds);
    registry.GetGauge("dfp.bench.stream.retrain_threads_speedup")
        .Set(retrain_speedup);
    registry.GetGauge("dfp.bench.stream.staleness_seconds")
        .Set(serial_run.staleness);

    bench::WriteBenchReport("stream");
    return 0;
}
