// Table 3 — Accuracy & time on the Chess dataset (3196 instances, 2 classes,
// ~72 items), sweeping min_sup ∈ {2000, 2200, 2500, 2800, 3000}.
//
// Expected shape (paper): min_sup = 1 enumeration is infeasible; pattern count
// and mining time drop steeply as min_sup rises; accuracy stays roughly flat
// across the swept range.
#include "bench/bench_util.hpp"
#include "exp/scalability.hpp"

using namespace dfp;

int main(int, char**) {
    std::puts("Table 3: accuracy & time on Chess data\n");
    bench::BeginBenchObservability();
    const auto db = PrepareTransactions(ChessSpec());
    ScalabilityConfig config;
    config.min_sups = {2000, 2200, 2500, 2800, 3000};
    config.coverage_delta = 3;
    const auto rows = RunScalability(db, config);
    PrintScalability("chess", db, rows);
    bench::WriteBenchReport("table3_chess");
    return 0;
}
