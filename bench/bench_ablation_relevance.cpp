// Ablation — MMRFS relevance measure: information gain vs Fisher score vs
// Gini. The paper states either IG or Fisher works as the relevance S
// (Definition 3); this bench verifies the framework is insensitive to the
// choice on pattern-structured data.
#include <cstdio>

#include "core/pipeline.hpp"
#include "ml/dtree/c45.hpp"
#include "ml/svm/svm.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

namespace {

double RunWith(const TransactionDatabase& train, const TransactionDatabase& test,
               RelevanceMeasure measure, bool use_svm, double min_sup_rel) {
    PipelineConfig config;
    config.miner.min_sup_rel = min_sup_rel;
    config.miner.max_pattern_len = 5;
    config.mmrfs.coverage_delta = 4;
    config.mmrfs.relevance = measure;
    PatternClassifierPipeline pipeline(config);
    std::unique_ptr<Classifier> learner;
    if (use_svm) {
        learner = std::make_unique<SvmClassifier>();
    } else {
        learner = std::make_unique<C45Classifier>();
    }
    if (!pipeline.Train(train, std::move(learner)).ok()) return 0.0;
    return pipeline.Accuracy(test);
}

}  // namespace

int main(int, char**) {
    std::puts("Ablation: MMRFS relevance measure (Pat_FS accuracy, 80/20 split)\n");
    TablePrinter table({"dataset", "learner", "info-gain", "fisher", "gini"});
    for (const std::string name : {"austral", "breast", "heart", "sonar"}) {
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t r = 0; r < db.num_transactions(); ++r) {
            (r % 5 == 0 ? test_rows : train_rows).push_back(r);
        }
        const auto train = db.Subset(train_rows);
        const auto test = db.Subset(test_rows);
        for (bool svm : {true, false}) {
            table.AddRow(
                {name, svm ? "svm" : "c4.5",
                 FormatPercent(RunWith(train, test, RelevanceMeasure::kInfoGain, svm, spec->bench_min_sup)),
                 FormatPercent(RunWith(train, test, RelevanceMeasure::kFisher, svm, spec->bench_min_sup)),
                 FormatPercent(RunWith(train, test, RelevanceMeasure::kGini, svm, spec->bench_min_sup))});
        }
        std::fprintf(stderr, "  done %s\n", name.c_str());
    }
    table.Print();
    return 0;
}
