// Shared helpers for the paper-table bench harnesses.
#pragma once

#include <sys/resource.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/string_util.hpp"
#include "exp/experiment.hpp"
#include "exp/table_printer.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace dfp::bench {

/// Process peak resident set size in bytes (0 when unavailable). Linux
/// reports ru_maxrss in KiB.
inline std::size_t PeakRssBytes() {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

/// Turns on span collection and clears any metrics left over from process
/// start, so the BENCH_*.json written at exit covers exactly this run.
/// `threads` is recorded as the dfp.bench.threads gauge so every BENCH_*.json
/// states the worker-thread count its numbers were measured with.
inline void BeginBenchObservability(std::size_t threads = 1) {
    dfp::obs::Registry::Get().ResetValues();
    dfp::obs::Tracer::Get().Clear();
    dfp::obs::EnableTracing(true);
    dfp::obs::Registry::Get().GetGauge("dfp.bench.threads").Set(
        static_cast<double>(threads));
}

/// Serializes the run's metrics + span trees to BENCH_<name>.json in the
/// working directory; these files are the machine-tracked perf trajectory
/// (git-ignored — the numbers live in EXPERIMENTS.md / CI artifacts).
inline void WriteBenchReport(const std::string& name) {
    // Every bench report carries the memory footprint alongside the timing
    // spans: process peak RSS plus the mining arenas' reservation gauges.
    dfp::obs::Registry::Get().GetGauge("dfp.bench.peak_rss_bytes").Set(
        static_cast<double>(PeakRssBytes()));
    PublishArenaMetrics();
    const dfp::obs::RunReport report = dfp::obs::CollectRunReport(name);
    const std::string path = "BENCH_" + name + ".json";
    const Status st = dfp::obs::WriteReportJsonFile(report, path);
    if (st.ok()) {
        std::printf("\n[bench] wrote %s (%zu counters, %zu gauges, %zu spans)\n",
                    path.c_str(), report.metrics.counters.size(),
                    report.metrics.gauges.size(), report.spans.size());
    } else {
        std::fprintf(stderr, "[bench] report failed: %s\n",
                     st.ToString().c_str());
    }
}

/// The three datasets used in Figures 1–3 of the paper, with a per-dataset
/// mining threshold (sonar's 60 attributes need a higher floor to keep the
/// candidate space enumerable, as in the paper's own support settings).
struct FigureDataset {
    std::string name;
    double min_sup_rel;
};

inline std::vector<FigureDataset> FigureDatasets() {
    return {{"austral", 0.05}, {"breast", 0.05}, {"sonar", 0.30}};
}

/// Prints a section header.
inline void Section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

/// Parses "--folds=N"-style flags very loosely; returns fallback when absent.
inline long FlagValue(int argc, char** argv, const std::string& name,
                      long fallback) {
    const std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0) {
            long v = fallback;
            if (ParseInt(arg.substr(prefix.size()), &v)) return v;
        }
    }
    return fallback;
}

}  // namespace dfp::bench
