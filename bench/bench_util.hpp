// Shared helpers for the paper-table bench harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "exp/experiment.hpp"
#include "exp/table_printer.hpp"

namespace dfp::bench {

/// The three datasets used in Figures 1–3 of the paper, with a per-dataset
/// mining threshold (sonar's 60 attributes need a higher floor to keep the
/// candidate space enumerable, as in the paper's own support settings).
struct FigureDataset {
    std::string name;
    double min_sup_rel;
};

inline std::vector<FigureDataset> FigureDatasets() {
    return {{"austral", 0.05}, {"breast", 0.05}, {"sonar", 0.30}};
}

/// Prints a section header.
inline void Section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

/// Parses "--folds=N"-style flags very loosely; returns fallback when absent.
inline long FlagValue(int argc, char** argv, const std::string& name,
                      long fallback) {
    const std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0) {
            long v = fallback;
            if (ParseInt(arg.substr(prefix.size()), &v)) return v;
        }
    }
    return fallback;
}

}  // namespace dfp::bench
