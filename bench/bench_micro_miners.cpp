// Microbenchmarks: frequent-itemset miner throughput vs min_sup and density.
// Run with --benchmark_min_time=0.1x for a quick pass.
#include <benchmark/benchmark.h>

#include "data/encoder.hpp"
#include "data/synthetic.hpp"
#include "fpm/apriori.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "fpm/fptree.hpp"

namespace dfp {
namespace {

const TransactionDatabase& BenchDb() {
    static const TransactionDatabase db = [] {
        SyntheticSpec spec;
        spec.rows = 1000;
        spec.attributes = 14;
        spec.arity = 3;
        spec.classes = 2;
        spec.marginal_skew = 0.35;
        spec.seed = 31;
        const Dataset data = GenerateSynthetic(spec);
        const auto encoder = ItemEncoder::FromSchema(data);
        return TransactionDatabase::FromDataset(data, *encoder);
    }();
    return db;
}

template <typename MinerT>
void MineAt(benchmark::State& state) {
    const auto& db = BenchDb();
    MinerConfig config;
    config.min_sup_rel = static_cast<double>(state.range(0)) / 100.0;
    config.max_pattern_len = 6;
    MinerT miner;
    std::size_t patterns = 0;
    for (auto _ : state) {
        auto result = miner.Mine(db, config);
        if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
        patterns = result->size();
        benchmark::DoNotOptimize(patterns);
    }
    state.counters["patterns"] = static_cast<double>(patterns);
}

void BM_FpGrowth(benchmark::State& state) { MineAt<FpGrowthMiner>(state); }
void BM_Apriori(benchmark::State& state) { MineAt<AprioriMiner>(state); }
void BM_Eclat(benchmark::State& state) { MineAt<EclatMiner>(state); }
void BM_Closed(benchmark::State& state) { MineAt<ClosedMiner>(state); }

BENCHMARK(BM_FpGrowth)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Apriori)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Eclat)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Closed)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

// FP-tree construction alone (the shared substrate of FP-growth).
void BM_FpTreeBuild(benchmark::State& state) {
    const auto& db = BenchDb();
    std::vector<FpTree::WeightedTransaction> txns;
    for (const auto& t : db.transactions()) txns.push_back({t, 1});
    const auto min_sup = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const FpTree tree = FpTree::Build(txns, min_sup);
        benchmark::DoNotOptimize(tree.num_nodes());
    }
}
BENCHMARK(BM_FpTreeBuild)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dfp
