// Figure 2 — Information gain and its theoretical upper bound vs. support.
//
// For each dataset we mine patterns at a low support threshold, bucket them by
// absolute support, and print the maximum observed IG per bucket next to the
// theoretical bound IG_ub(θ) at the bucket midpoint. The paper's shape: every
// point sits under the bound curve; the bound is small at very low and very
// high support and peaks where θ matches the class prior.
#include <algorithm>
#include <cstdio>

#include "core/bounds.hpp"
#include "core/measures.hpp"
#include "core/pipeline.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

int main(int, char**) {
    std::puts("Figure 2: information gain and theoretical upper bound vs support");

    for (const auto& fd : bench::FigureDatasets()) {
        const std::string& name = fd.name;
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        const auto priors = db.ClassPriors();
        const std::size_t n = db.num_transactions();
        bench::Section(StrFormat("%s (n=%zu, p=%.3f)", name.c_str(), n, priors[0]));

        PipelineConfig config;
        config.miner.min_sup_rel = fd.min_sup_rel * 0.6;
        config.miner.max_pattern_len = 5;
        config.miner.max_patterns = 5'000'000;
        PatternClassifierPipeline pipeline(config);
        auto mined = pipeline.MineCandidates(db);
        if (!mined.ok()) {
            std::printf("mining failed: %s\n", mined.status().ToString().c_str());
            continue;
        }

        const std::size_t buckets = 12;
        std::vector<double> max_ig(buckets, 0.0);
        std::vector<std::size_t> count(buckets, 0);
        std::size_t violations = 0;
        for (const Pattern& p : *mined) {
            const auto stats = StatsOfPattern(db, p);
            const double ig = InformationGain(stats);
            const double theta = stats.theta();
            const auto b = std::min(buckets - 1,
                                    static_cast<std::size_t>(theta * buckets));
            max_ig[b] = std::max(max_ig[b], ig);
            count[b]++;
            if (ig > IgUpperBoundMulticlass(theta, priors) + 1e-9) ++violations;
        }

        TablePrinter table(
            {"support range", "#patterns", "max IG observed", "IG_ub(mid)"});
        for (std::size_t b = 0; b < buckets; ++b) {
            const double lo = static_cast<double>(b) / buckets;
            const double hi = static_cast<double>(b + 1) / buckets;
            const double mid = 0.5 * (lo + hi);
            table.AddRow(
                {StrFormat("[%4.0f, %4.0f)", lo * static_cast<double>(n),
                           hi * static_cast<double>(n)),
                 StrFormat("%zu", count[b]),
                 count[b] > 0 ? StrFormat("%.4f", max_ig[b]) : std::string("-"),
                 StrFormat("%.4f", IgUpperBoundMulticlass(mid, priors))});
        }
        table.Print();
        std::printf("patterns: %zu; bound violations: %zu (paper's theorem: 0)\n",
                    mined->size(), violations);
    }
    return 0;
}
