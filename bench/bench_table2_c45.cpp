// Table 2 — C4.5 accuracy on frequent combined features vs single features.
//
// Same protocol as Table 1 with the C4.5 learner and the paper's four columns
// (Item_All, Item_FS, Pat_All, Pat_FS).
//
// Flags: --folds=N (default 10)
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace dfp;

int main(int argc, char** argv) {
    ExperimentConfig config;
    config.folds = static_cast<std::size_t>(bench::FlagValue(argc, argv, "folds", 10));

    std::printf("Table 2: accuracy by C4.5 (%zu-fold CV)\n\n", config.folds);
    TablePrinter table(
        {"dataset", "Item_All", "Item_FS", "Pat_All", "Pat_FS", "best"});
    std::size_t pat_fs_wins = 0;
    std::size_t rows = 0;
    for (const SyntheticSpec& spec : UciTableSpecs()) {
        const auto db = PrepareTransactions(spec);
        config.min_sup_rel = spec.bench_min_sup;
        const ModelVariant variants[] = {ModelVariant::kItemAll,
                                         ModelVariant::kItemFs,
                                         ModelVariant::kPatAll, ModelVariant::kPatFs};
        double acc[4] = {0, 0, 0, 0};
        std::vector<std::string> cells = {spec.name};
        for (int v = 0; v < 4; ++v) {
            const auto outcome =
                RunVariantCv(db, variants[v], LearnerKind::kC45, config);
            acc[v] = outcome.ok ? outcome.accuracy : 0.0;
            cells.push_back(outcome.ok ? FormatPercent(outcome.accuracy)
                                       : outcome.error);
        }
        int best = 0;
        for (int v = 1; v < 4; ++v) {
            if (acc[v] > acc[best]) best = v;
        }
        cells.push_back(ModelVariantName(variants[best]));
        table.AddRow(std::move(cells));
        ++rows;
        if (best == 3) ++pat_fs_wins;
        std::fprintf(stderr, "  done %s\n", spec.name.c_str());
    }
    table.Print();
    std::printf("\nshape: Pat_FS best on %zu/%zu datasets\n", pat_fs_wins, rows);
    return 0;
}
