// Parallel-layer throughput: each miner plus MMRFS selection on a dense
// synthetic corpus at 1 / 2 / 4 / 8 worker threads (ceiling from --threads=,
// default 8).
//
// The parallel layer's contract is "same output, less wall clock": the
// equivalence + decomposition suites (ctest -L dfp_parallel) certify the
// first half, this bench records the second. Results land in
// BENCH_parallel.json as
//   dfp.bench.parallel.<miner>.t<k>.seconds / .speedup / .efficiency
//   dfp.bench.parallel.mmrfs.t<k>.seconds / .speedup / .efficiency
// plus the usual dfp.parallel.* pool counters, so the perf trajectory of the
// recursive fan-out is machine-tracked alongside the paper tables.
//
// Efficiency is speedup normalised by the *usable* hardware parallelism:
//   efficiency(t) = speedup(t) / min(t, hardware_concurrency)
// so the number is portable across hosts — on an 8-way box 6x at 8 threads
// reads 0.75, while on a single-core container (where every thread count
// time-slices one core and raw speedup degenerates to ~1.0x) it reads the
// scheduling overhead directly. The bench_diff gate in
// bench/baselines/parallel.json bounds efficiency, not raw speedup, for
// exactly this reason; the raw >=6x mining / >=4x MMRFS targets at 8 threads
// correspond to efficiency >= 0.75 / 0.50 on >=8-way hardware.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "core/mmrfs.hpp"
#include "exp/table_printer.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "obs/metrics.hpp"

using namespace dfp;

namespace {

// Dense random transactions: enough structure that mining fans out over many
// first-level subproblems, dense enough that each subproblem has real work
// below the first level (so the recursive decomposition actually splits).
TransactionDatabase DenseCorpus(std::size_t rows, std::size_t items,
                                double density, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(rows);
    std::vector<ClassLabel> labels(rows);
    for (std::size_t t = 0; t < rows; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % items));
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), items, 2);
}

struct MinerRow {
    std::string name;
    std::unique_ptr<Miner> miner;
};

double HardwareThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1.0 : static_cast<double>(hw);
}

// speedup normalised by the parallelism the host can actually deliver at
// this thread count; 1.0 = perfect scaling on this hardware.
double Efficiency(double speedup, std::size_t threads) {
    const double usable = std::min(static_cast<double>(threads),
                                   HardwareThreads());
    return usable > 0.0 ? speedup / usable : speedup;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t max_threads = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "threads", 8));
    bench::BeginBenchObservability(max_threads);
    auto& registry = obs::Registry::Get();
    registry.GetGauge("dfp.bench.parallel.hw_threads").Set(HardwareThreads());

    // 1 / 2 / 4 / 8 capped by --threads=, with the cap itself appended when
    // it is not a member (e.g. --threads=6 measures 1/2/4/6).
    std::vector<std::size_t> thread_counts;
    for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
        if (t <= max_threads) thread_counts.push_back(t);
    }
    if (thread_counts.empty() || thread_counts.back() != max_threads) {
        thread_counts.push_back(max_threads);
    }

    std::printf("Parallel mining + MMRFS throughput (threads:");
    for (const std::size_t t : thread_counts) std::printf(" %zu", t);
    std::printf("; host hw_threads=%.0f)\n\n", HardwareThreads());

    const auto db = DenseCorpus(/*rows=*/4000, /*items=*/30, /*density=*/0.40,
                                /*seed=*/11);
    MinerConfig config;
    config.min_sup_rel = 0.02;

    std::vector<MinerRow> miners;
    miners.push_back({"fpgrowth", std::make_unique<FpGrowthMiner>()});
    miners.push_back({"eclat", std::make_unique<EclatMiner>()});
    miners.push_back({"closed", std::make_unique<ClosedMiner>()});

    TablePrinter table({"stage", "threads", "output", "seconds", "speedup",
                        "efficiency"});
    for (const auto& row : miners) {
        double serial_seconds = 0.0;
        for (const std::size_t threads : thread_counts) {
            config.num_threads = threads;
            // Warm-up pass (page cache, allocator), then the timed pass.
            (void)row.miner->Mine(db, config);
            Stopwatch watch;
            const auto mined = row.miner->Mine(db, config);
            const double seconds = watch.ElapsedSeconds();
            if (!mined.ok()) {
                std::fprintf(stderr, "%s failed: %s\n", row.name.c_str(),
                             mined.status().ToString().c_str());
                return 1;
            }
            if (threads == 1) serial_seconds = seconds;
            const double speedup = seconds > 0.0 ? serial_seconds / seconds : 1.0;
            const double efficiency = Efficiency(speedup, threads);
            table.AddRow({row.name, StrFormat("%zu", threads),
                          StrFormat("%zu patterns", mined->size()),
                          StrFormat("%.3f", seconds),
                          StrFormat("%.2fx", speedup),
                          StrFormat("%.2f", efficiency)});
            const std::string prefix =
                "dfp.bench.parallel." + row.name + ".t" + std::to_string(threads);
            registry.GetGauge(prefix + ".seconds").Set(seconds);
            registry.GetGauge(prefix + ".speedup").Set(speedup);
            registry.GetGauge(prefix + ".efficiency").Set(efficiency);
            registry.GetGauge(prefix + ".patterns")
                .Set(static_cast<double>(mined->size()));
        }
    }

    // MMRFS selection over the closed pool of the same corpus: the fused
    // refresh + argmax round is the parallel section; the selected sequence
    // is thread-count-invariant (certified by the dfp_parallel suite), so
    // only the wall clock moves.
    auto pool_result = ClosedMiner().Mine(db, config);
    if (!pool_result.ok()) {
        std::fprintf(stderr, "closed pool mining failed: %s\n",
                     pool_result.status().ToString().c_str());
        return 1;
    }
    std::vector<Pattern> candidates = std::move(*pool_result);
    AttachMetadata(db, &candidates);
    MmrfsConfig select;
    select.coverage_delta = 3;
    double mmrfs_serial_seconds = 0.0;
    for (const std::size_t threads : thread_counts) {
        select.num_threads = threads;
        (void)RunMmrfs(db, candidates, select);  // warm-up
        Stopwatch watch;
        const MmrfsResult result = RunMmrfs(db, candidates, select);
        const double seconds = watch.ElapsedSeconds();
        if (threads == 1) mmrfs_serial_seconds = seconds;
        const double speedup =
            seconds > 0.0 ? mmrfs_serial_seconds / seconds : 1.0;
        const double efficiency = Efficiency(speedup, threads);
        table.AddRow({"mmrfs", StrFormat("%zu", threads),
                      StrFormat("%zu selected", result.selected.size()),
                      StrFormat("%.3f", seconds),
                      StrFormat("%.2fx", speedup),
                      StrFormat("%.2f", efficiency)});
        const std::string prefix =
            "dfp.bench.parallel.mmrfs.t" + std::to_string(threads);
        registry.GetGauge(prefix + ".seconds").Set(seconds);
        registry.GetGauge(prefix + ".speedup").Set(speedup);
        registry.GetGauge(prefix + ".efficiency").Set(efficiency);
        registry.GetGauge(prefix + ".selected")
            .Set(static_cast<double>(result.selected.size()));
    }
    table.Print();

    bench::WriteBenchReport("parallel");
    return 0;
}
