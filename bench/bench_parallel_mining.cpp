// Parallel mining throughput: each miner on a dense synthetic corpus at
// 1 / 2 / N worker threads (N from --threads=, default 4).
//
// The parallel layer's contract is "same patterns, less wall clock": the
// equivalence suite (ctest -L dfp_parallel) certifies the first half, this
// bench records the second. Results land in BENCH_parallel.json as
//   dfp.bench.parallel.<miner>.t<k>.seconds / .speedup
// plus the usual dfp.parallel.* pool counters, so the perf trajectory of the
// fan-out is machine-tracked alongside the paper tables. On a single-core
// host the speedups degenerate to ~1.0x (scheduling overhead only) — the
// numbers that matter are taken on multicore CI hardware.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "exp/table_printer.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "obs/metrics.hpp"

using namespace dfp;

namespace {

// Dense random transactions: enough structure that mining fans out over many
// first-level subproblems, dense enough that each subproblem has real work.
TransactionDatabase DenseCorpus(std::size_t rows, std::size_t items,
                                double density, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(rows);
    std::vector<ClassLabel> labels(rows);
    for (std::size_t t = 0; t < rows; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % items));
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), items, 2);
}

struct MinerRow {
    std::string name;
    std::unique_ptr<Miner> miner;
};

}  // namespace

int main(int argc, char** argv) {
    const std::size_t max_threads = static_cast<std::size_t>(
        bench::FlagValue(argc, argv, "threads", 4));
    bench::BeginBenchObservability(max_threads);

    std::printf("Parallel mining throughput (1 / 2 / %zu threads)\n\n",
                max_threads);
    const auto db = DenseCorpus(/*rows=*/4000, /*items=*/30, /*density=*/0.40,
                                /*seed=*/11);
    MinerConfig config;
    config.min_sup_rel = 0.02;

    std::vector<MinerRow> miners;
    miners.push_back({"fpgrowth", std::make_unique<FpGrowthMiner>()});
    miners.push_back({"eclat", std::make_unique<EclatMiner>()});
    miners.push_back({"closed", std::make_unique<ClosedMiner>()});

    std::vector<std::size_t> thread_counts = {1, 2};
    if (max_threads > 2) thread_counts.push_back(max_threads);

    TablePrinter table({"miner", "threads", "patterns", "seconds",
                        "patterns/s", "speedup"});
    auto& registry = obs::Registry::Get();
    for (const auto& row : miners) {
        double serial_seconds = 0.0;
        for (const std::size_t threads : thread_counts) {
            config.num_threads = threads;
            // Warm-up pass (page cache, allocator), then the timed pass.
            (void)row.miner->Mine(db, config);
            Stopwatch watch;
            const auto mined = row.miner->Mine(db, config);
            const double seconds = watch.ElapsedSeconds();
            if (!mined.ok()) {
                std::fprintf(stderr, "%s failed: %s\n", row.name.c_str(),
                             mined.status().ToString().c_str());
                return 1;
            }
            if (threads == 1) serial_seconds = seconds;
            const double speedup = seconds > 0.0 ? serial_seconds / seconds : 1.0;
            const double rate =
                seconds > 0.0 ? static_cast<double>(mined->size()) / seconds : 0.0;
            table.AddRow({row.name, StrFormat("%zu", threads),
                          StrFormat("%zu", mined->size()),
                          StrFormat("%.3f", seconds), StrFormat("%.0f", rate),
                          StrFormat("%.2fx", speedup)});
            const std::string prefix =
                "dfp.bench.parallel." + row.name + ".t" + std::to_string(threads);
            registry.GetGauge(prefix + ".seconds").Set(seconds);
            registry.GetGauge(prefix + ".speedup").Set(speedup);
            registry.GetGauge(prefix + ".patterns")
                .Set(static_cast<double>(mined->size()));
        }
    }
    table.Print();

    bench::WriteBenchReport("parallel");
    return 0;
}
