// Ablation — closed patterns vs all frequent patterns as feature candidates.
//
// The paper argues for closed patterns (Section 3.3): a non-closed pattern is
// completely redundant w.r.t. its closure under the Eq. 9 measure. This bench
// quantifies the candidate-set compression and shows accuracy is preserved.
#include <cstdio>

#include "common/stopwatch.hpp"
#include "core/pipeline.hpp"
#include "ml/svm/svm.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

namespace {

struct Outcome {
    std::size_t candidates = 0;
    double train_seconds = 0.0;
    double accuracy = 0.0;
    bool ok = false;
};

Outcome RunOnce(const TransactionDatabase& train, const TransactionDatabase& test,
                MinerKind kind, double min_sup_rel) {
    PipelineConfig config;
    config.miner_kind = kind;
    config.miner.min_sup_rel = min_sup_rel;
    config.miner.max_pattern_len = 5;
    config.mmrfs.coverage_delta = 4;
    PatternClassifierPipeline pipeline(config);
    Stopwatch watch;
    Outcome out;
    if (!pipeline.Train(train, std::make_unique<SvmClassifier>()).ok()) return out;
    out.ok = true;
    out.train_seconds = watch.ElapsedSeconds();
    out.candidates = pipeline.stats().num_candidates;
    out.accuracy = pipeline.Accuracy(test);
    return out;
}

}  // namespace

int main(int, char**) {
    std::puts("Ablation: closed patterns vs all frequent patterns as candidates\n");
    TablePrinter table({"dataset", "#closed", "#all-freq", "compression",
                        "acc closed %", "acc all %", "time closed s", "time all s"});
    for (const std::string name : {"austral", "breast", "horse", "iono", "sonar"}) {
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        // 80/20 split.
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t r = 0; r < db.num_transactions(); ++r) {
            (r % 5 == 0 ? test_rows : train_rows).push_back(r);
        }
        const auto train = db.Subset(train_rows);
        const auto test = db.Subset(test_rows);

        const Outcome closed = RunOnce(train, test, MinerKind::kClosed, spec->bench_min_sup);
        const Outcome all = RunOnce(train, test, MinerKind::kFpGrowth, spec->bench_min_sup);
        if (!closed.ok || !all.ok) {
            table.AddRow({name, "mining failed"});
            continue;
        }
        table.AddRow({name, StrFormat("%zu", closed.candidates),
                      StrFormat("%zu", all.candidates),
                      StrFormat("%.2fx", static_cast<double>(all.candidates) /
                                             static_cast<double>(std::max<std::size_t>(
                                                 closed.candidates, 1))),
                      FormatPercent(closed.accuracy), FormatPercent(all.accuracy),
                      StrFormat("%.3f", closed.train_seconds),
                      StrFormat("%.3f", all.train_seconds)});
        std::fprintf(stderr, "  done %s\n", name.c_str());
    }
    table.Print();
    std::puts("\nshape: closed candidates are a (often much) smaller set with"
              " equivalent accuracy.");
    return 0;
}
