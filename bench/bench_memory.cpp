// Memory-footprint bench for the allocation-aware mining core.
//
// Records, per miner, wall-clock and pattern throughput next to the arena
// reservation gauges (dfp.arena.bytes_reserved / .peak_bytes_reserved /
// .chunks_allocated) and the process peak RSS, plus an SMO section that
// trains the same solve with the kernel-row cache off and on. Results land in
// BENCH_memory.json:
//   dfp.bench.memory.<miner>.seconds / .patterns
//   dfp.bench.memory.smo.cache_{off,on}.seconds
//   dfp.bench.peak_rss_bytes, dfp.arena.*, dfp.svm.cache.*
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "exp/table_printer.hpp"
#include "fpm/closed_miner.hpp"
#include "fpm/eclat.hpp"
#include "fpm/fpgrowth.hpp"
#include "ml/svm/smo.hpp"
#include "obs/metrics.hpp"

using namespace dfp;

namespace {

TransactionDatabase DenseCorpus(std::size_t rows, std::size_t items,
                                double density, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<ItemId>> txns(rows);
    std::vector<ClassLabel> labels(rows);
    for (std::size_t t = 0; t < rows; ++t) {
        for (ItemId i = 0; i < items; ++i) {
            if (rng.Bernoulli(density)) txns[t].push_back(i);
        }
        if (txns[t].empty()) txns[t].push_back(static_cast<ItemId>(t % items));
        labels[t] = static_cast<ClassLabel>(rng.UniformInt(std::uint64_t{2}));
    }
    return TransactionDatabase::FromTransactions(std::move(txns),
                                                 std::move(labels), items, 2);
}

// Two overlapping uniform clouds: separable enough that SMO converges, noisy
// enough that it takes real kernel work to get there.
void TwoClassClouds(std::size_t n, std::size_t d, std::uint64_t seed,
                    FeatureMatrix* x, std::vector<int>* y) {
    Rng rng(seed);
    *x = FeatureMatrix(n, d);
    y->assign(n, 1);
    for (std::size_t r = 0; r < n; ++r) {
        const int label = r % 2 == 0 ? 1 : -1;
        (*y)[r] = label;
        const double shift = label == 1 ? 0.6 : -0.6;
        for (std::size_t c = 0; c < d; ++c) {
            x->At(r, c) = rng.Uniform(-1.0, 1.0) + shift;
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t threads =
        static_cast<std::size_t>(bench::FlagValue(argc, argv, "threads", 1));
    bench::BeginBenchObservability(threads);
    auto& registry = obs::Registry::Get();

    bench::Section("Mining memory profile (arena-backed core)");
    const auto db = DenseCorpus(/*rows=*/4000, /*items=*/30, /*density=*/0.40,
                                /*seed=*/11);
    MinerConfig config;
    config.min_sup_rel = 0.02;
    config.num_threads = threads;

    std::vector<std::pair<std::string, std::unique_ptr<Miner>>> miners;
    miners.emplace_back("fpgrowth", std::make_unique<FpGrowthMiner>());
    miners.emplace_back("eclat", std::make_unique<EclatMiner>());
    miners.emplace_back("closed", std::make_unique<ClosedMiner>());

    TablePrinter table({"miner", "patterns", "seconds", "arena peak MiB",
                        "peak RSS MiB"});
    for (const auto& [name, miner] : miners) {
        (void)miner->Mine(db, config);  // warm-up (page cache, arena chunks)
        Stopwatch watch;
        const auto mined = miner->Mine(db, config);
        const double seconds = watch.ElapsedSeconds();
        if (!mined.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                         mined.status().ToString().c_str());
            return 1;
        }
        const double arena_peak =
            static_cast<double>(Arena::PeakReservedBytes());
        const double rss = static_cast<double>(bench::PeakRssBytes());
        table.AddRow({name, StrFormat("%zu", mined->size()),
                      StrFormat("%.3f", seconds),
                      StrFormat("%.2f", arena_peak / (1024.0 * 1024.0)),
                      StrFormat("%.1f", rss / (1024.0 * 1024.0))});
        const std::string prefix = "dfp.bench.memory." + name;
        registry.GetGauge(prefix + ".seconds").Set(seconds);
        registry.GetGauge(prefix + ".patterns")
            .Set(static_cast<double>(mined->size()));
    }
    table.Print();

    bench::Section("SMO kernel-row cache (gram disabled, rbf)");
    FeatureMatrix x;
    std::vector<int> y;
    TwoClassClouds(/*n=*/900, /*d=*/24, /*seed=*/23, &x, &y);
    SmoConfig smo;
    smo.kernel.type = KernelType::kRbf;
    smo.kernel.gamma = 0.5;
    smo.gram_limit = 0;  // force the row-cache / direct paths
    TablePrinter smo_table({"config", "seconds", "steps", "converged"});
    for (const bool cache_on : {false, true}) {
        SmoConfig run = smo;
        run.cache_bytes = cache_on ? 32ull << 20 : 0;
        Stopwatch watch;
        const auto model = TrainSmo(x, y, run);
        const double seconds = watch.ElapsedSeconds();
        if (!model.ok()) {
            std::fprintf(stderr, "smo failed: %s\n",
                         model.status().ToString().c_str());
            return 1;
        }
        const std::string label = cache_on ? "cache_on" : "cache_off";
        smo_table.AddRow({label, StrFormat("%.3f", seconds),
                          StrFormat("%zu", model->iterations),
                          model->converged ? "yes" : "no"});
        registry.GetGauge("dfp.bench.memory.smo." + label + ".seconds")
            .Set(seconds);
    }
    smo_table.Print();

    bench::WriteBenchReport("memory");
    return 0;
}
