// Ablation — the framework vs associative classification (Section 5's
// comparison with rule-based classifiers like CBA/CMAR/HARMONY).
//
// Pat_FS represents data in a feature space and lets any learner decide;
// the CBA-style baseline predicts with a confidence-ordered rule list built
// from the same mined patterns. The paper reports the feature-space approach
// winning ("improvement up to 11.94% on Waveform over HARMONY").
#include <cstdio>

#include "core/pipeline.hpp"
#include "ml/rules/cba.hpp"
#include "ml/rules/harmony.hpp"
#include "ml/svm/svm.hpp"
#include "ml/dtree/c45.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

int main(int, char**) {
    std::puts(
        "Ablation: pattern feature space (Pat_FS) vs CBA-style rule classifier\n");
    TablePrinter table({"dataset", "Pat_FS+SVM %", "Pat_FS+C4.5 %", "CBA rules %",
                        "HARMONY %", "#cba", "#harmony"});
    for (const std::string name :
         {"austral", "breast", "cleve", "heart", "lymph", "waveform"}) {
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        std::vector<std::size_t> train_rows;
        std::vector<std::size_t> test_rows;
        for (std::size_t r = 0; r < db.num_transactions(); ++r) {
            (r % 5 == 0 ? test_rows : train_rows).push_back(r);
        }
        const auto train = db.Subset(train_rows);
        const auto test = db.Subset(test_rows);

        PipelineConfig config;
        config.miner.min_sup_rel = spec->bench_min_sup;
        config.miner.max_pattern_len = 5;
        config.mmrfs.coverage_delta = 4;

        PatternClassifierPipeline svm_pipe(config);
        double svm_acc = 0.0;
        if (svm_pipe.Train(train, std::make_unique<SvmClassifier>()).ok()) {
            svm_acc = svm_pipe.Accuracy(test);
        }
        PatternClassifierPipeline c45_pipe(config);
        double c45_acc = 0.0;
        if (c45_pipe.Train(train, std::make_unique<C45Classifier>()).ok()) {
            c45_acc = c45_pipe.Accuracy(test);
        }

        CbaConfig cba_config;
        cba_config.miner.min_sup_rel = spec->bench_min_sup;
        cba_config.miner.max_pattern_len = 5;
        cba_config.min_confidence = 0.6;
        CbaClassifier cba(cba_config);
        double cba_acc = 0.0;
        std::size_t rules = 0;
        if (cba.Train(train).ok()) {
            cba_acc = cba.Accuracy(test);
            rules = cba.rules().size();
        }
        HarmonyConfig harmony_config;
        harmony_config.miner.min_sup_rel = spec->bench_min_sup;
        harmony_config.miner.max_pattern_len = 5;
        harmony_config.min_confidence = 0.6;
        HarmonyClassifier harmony(harmony_config);
        double harmony_acc = 0.0;
        std::size_t harmony_rules = 0;
        if (harmony.Train(train).ok()) {
            harmony_acc = harmony.Accuracy(test);
            harmony_rules = harmony.rules().size();
        }
        table.AddRow({name, FormatPercent(svm_acc), FormatPercent(c45_acc),
                      FormatPercent(cba_acc), FormatPercent(harmony_acc),
                      StrFormat("%zu", rules), StrFormat("%zu", harmony_rules)});
        std::fprintf(stderr, "  done %s\n", name.c_str());
    }
    table.Print();
    return 0;
}
