// Table 5 — Accuracy & time on the Letter Recognition dataset
// (20000 instances, 26 classes, ~112 items), sweeping
// min_sup ∈ {3000, 3500, 4000, 4500}.
//
// Expected shape (paper): min_sup = 1 enumerates millions of patterns; the
// sweep yields thousands of patterns with time falling as min_sup rises;
// accuracy roughly flat. The SVM column uses the Pegasos linear solver (the
// 20k-row one-vs-rest problems are out of SMO's comfortable range — the same
// reason the paper would use a linear solver here).
#include "bench/bench_util.hpp"
#include "exp/scalability.hpp"

using namespace dfp;

int main(int, char**) {
    std::puts("Table 5: accuracy & time on Letter Recognition data\n");
    bench::BeginBenchObservability();
    const auto db = PrepareTransactions(LetterSpec());
    ScalabilityConfig config;
    config.min_sups = {3000, 3500, 4000, 4500};
    config.max_pattern_len = 5;
    config.coverage_delta = 2;
    config.max_features = 600;
    const auto rows = RunScalability(db, config);
    PrintScalability("letter", db, rows);
    bench::WriteBenchReport("table5_letter");
    return 0;
}
