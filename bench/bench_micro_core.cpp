// Microbenchmarks of the core framework machinery: MMRFS selection, feature-
// space transformation, measures/bounds, and BitVector cover kernels.
#include <benchmark/benchmark.h>

#include "core/bounds.hpp"
#include "core/feature_space.hpp"
#include "core/measures.hpp"
#include "core/mmrfs.hpp"
#include "core/pipeline.hpp"
#include "data/encoder.hpp"
#include "data/synthetic.hpp"

namespace dfp {
namespace {

struct Fixture {
    TransactionDatabase db;
    std::vector<Pattern> candidates;
};

const Fixture& BenchFixture() {
    static const Fixture fixture = [] {
        SyntheticSpec spec;
        spec.rows = 800;
        spec.attributes = 12;
        spec.arity = 3;
        spec.classes = 2;
        spec.seed = 17;
        const Dataset data = GenerateSynthetic(spec);
        const auto encoder = ItemEncoder::FromSchema(data);
        Fixture f{TransactionDatabase::FromDataset(data, *encoder), {}};
        PipelineConfig config;
        config.miner.min_sup_rel = 0.05;
        config.miner.max_pattern_len = 5;
        PatternClassifierPipeline pipeline(config);
        f.candidates = std::move(*pipeline.MineCandidates(f.db));
        return f;
    }();
    return fixture;
}

void BM_Mmrfs(benchmark::State& state) {
    const auto& f = BenchFixture();
    MmrfsConfig config;
    config.coverage_delta = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const auto result = RunMmrfs(f.db, f.candidates, config);
        benchmark::DoNotOptimize(result.selected.size());
    }
    state.counters["candidates"] = static_cast<double>(f.candidates.size());
}
BENCHMARK(BM_Mmrfs)->Arg(1)->Arg(3)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FeatureTransform(benchmark::State& state) {
    const auto& f = BenchFixture();
    const auto k = std::min<std::size_t>(f.candidates.size(),
                                         static_cast<std::size_t>(state.range(0)));
    std::vector<Pattern> selected(f.candidates.begin(), f.candidates.begin() + k);
    const FeatureSpace space =
        FeatureSpace::Build(f.db.num_items(), std::move(selected));
    for (auto _ : state) {
        const FeatureMatrix x = space.Transform(f.db);
        benchmark::DoNotOptimize(x.rows());
    }
}
BENCHMARK(BM_FeatureTransform)->Arg(50)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_PatternRelevance(benchmark::State& state) {
    const auto& f = BenchFixture();
    for (auto _ : state) {
        double total = 0.0;
        for (const Pattern& p : f.candidates) {
            total += PatternRelevance(RelevanceMeasure::kInfoGain, f.db, p);
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_PatternRelevance)->Unit(benchmark::kMillisecond);

void BM_IgUpperBound(benchmark::State& state) {
    for (auto _ : state) {
        double total = 0.0;
        for (int i = 1; i < 1000; ++i) total += IgUpperBound(i / 1000.0, 0.37);
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_IgUpperBound);

void BM_CoverAndCount(benchmark::State& state) {
    const auto& f = BenchFixture();
    const BitVector& a = f.db.ItemCover(0);
    const BitVector& b = f.db.ItemCover(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.AndCount(b));
    }
}
BENCHMARK(BM_CoverAndCount);

}  // namespace
}  // namespace dfp
