// Figure 1 — Information gain vs. pattern length (austral, breast, sonar).
//
// The paper's scatter plots show that some frequent patterns (length >= 2)
// reach higher information gain than any single feature. We reproduce the
// figure as a per-length summary table (count / mean / max IG per pattern
// length) and check the headline shape: max IG over combined patterns exceeds
// the best single feature.
#include <algorithm>
#include <cstdio>

#include "core/measures.hpp"
#include "core/pipeline.hpp"
#include "bench/bench_util.hpp"

using namespace dfp;

int main(int argc, char** argv) {
    const auto max_len =
        static_cast<std::size_t>(bench::FlagValue(argc, argv, "max-len", 5));
    std::puts("Figure 1: information gain vs pattern length");
    std::printf("(closed patterns, per-dataset min_sup, max length %zu)\n",
                max_len);

    for (const auto& fd : bench::FigureDatasets()) {
        const std::string& name = fd.name;
        const auto spec = GetSpecByName(name);
        const auto db = PrepareTransactions(*spec);
        bench::Section(StrFormat("%s (%zu rows, %zu items)", name.c_str(),
                                 db.num_transactions(), db.num_items()));

        // Single features.
        double best_single = 0.0;
        for (ItemId i = 0; i < db.num_items(); ++i) {
            const auto stats = StatsOfCover(db, db.ItemCover(i));
            best_single = std::max(best_single, InformationGain(stats));
        }

        PipelineConfig config;
        config.miner.min_sup_rel = fd.min_sup_rel;
        config.miner.max_pattern_len = max_len;
        PatternClassifierPipeline pipeline(config);
        auto mined = pipeline.MineCandidates(db);
        if (!mined.ok()) {
            std::printf("mining failed: %s\n", mined.status().ToString().c_str());
            continue;
        }

        std::vector<std::size_t> count(max_len + 1, 0);
        std::vector<double> sum(max_len + 1, 0.0);
        std::vector<double> peak(max_len + 1, 0.0);
        for (const Pattern& p : *mined) {
            const double ig = PatternRelevance(RelevanceMeasure::kInfoGain, db, p);
            const std::size_t len = std::min(p.length(), max_len);
            count[len]++;
            sum[len] += ig;
            peak[len] = std::max(peak[len], ig);
        }

        TablePrinter table({"length", "#patterns", "mean IG", "max IG"});
        table.AddRow({"1 (single)", StrFormat("%zu", db.num_items()), "-",
                      StrFormat("%.4f", best_single)});
        double best_pattern = 0.0;
        for (std::size_t len = 2; len <= max_len; ++len) {
            if (count[len] == 0) continue;
            table.AddRow({StrFormat("%zu", len), StrFormat("%zu", count[len]),
                          StrFormat("%.4f", sum[len] / count[len]),
                          StrFormat("%.4f", peak[len])});
            best_pattern = std::max(best_pattern, peak[len]);
        }
        table.Print();
        std::printf("shape check: max pattern IG %.4f %s max single-feature IG %.4f\n",
                    best_pattern, best_pattern > best_single ? ">" : "<=",
                    best_single);
    }
    return 0;
}
