// Table 4 — Accuracy & time on the Waveform dataset (5000 instances,
// 3 classes, ~105 items), sweeping min_sup ∈ {80, 100, 150, 200}.
//
// Expected shape (paper): min_sup = 1 enumerates millions of patterns (feature
// selection infeasible); the sweep shows pattern counts in the thousands to
// tens of thousands, time falling with min_sup, accuracy roughly flat.
#include "bench/bench_util.hpp"
#include "exp/scalability.hpp"

using namespace dfp;

int main(int, char**) {
    std::puts("Table 4: accuracy & time on Waveform data\n");
    bench::BeginBenchObservability();
    const auto db = PrepareTransactions(WaveformSpec());
    ScalabilityConfig config;
    config.min_sups = {80, 100, 150, 200};
    config.max_pattern_len = 5;
    config.coverage_delta = 3;
    const auto rows = RunScalability(db, config);
    PrintScalability("waveform", db, rows);
    bench::WriteBenchReport("table4_waveform");
    return 0;
}
