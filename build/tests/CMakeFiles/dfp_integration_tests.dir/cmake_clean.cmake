file(REMOVE_RECURSE
  "CMakeFiles/dfp_integration_tests.dir/integration/csv_pipeline_test.cpp.o"
  "CMakeFiles/dfp_integration_tests.dir/integration/csv_pipeline_test.cpp.o.d"
  "CMakeFiles/dfp_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/dfp_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/dfp_integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/dfp_integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "dfp_integration_tests"
  "dfp_integration_tests.pdb"
  "dfp_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
