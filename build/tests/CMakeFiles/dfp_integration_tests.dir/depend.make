# Empty dependencies file for dfp_integration_tests.
# This may be replaced when dependencies are built.
