file(REMOVE_RECURSE
  "CMakeFiles/dfp_fpm_tests.dir/fpm/fptree_test.cpp.o"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/fptree_test.cpp.o.d"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/miners_property_test.cpp.o"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/miners_property_test.cpp.o.d"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/miners_test.cpp.o"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/miners_test.cpp.o.d"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/pathminer_test.cpp.o"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/pathminer_test.cpp.o.d"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/prefixspan_test.cpp.o"
  "CMakeFiles/dfp_fpm_tests.dir/fpm/prefixspan_test.cpp.o.d"
  "dfp_fpm_tests"
  "dfp_fpm_tests.pdb"
  "dfp_fpm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_fpm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
