
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fpm/fptree_test.cpp" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/fptree_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/fptree_test.cpp.o.d"
  "/root/repo/tests/fpm/miners_property_test.cpp" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/miners_property_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/miners_property_test.cpp.o.d"
  "/root/repo/tests/fpm/miners_test.cpp" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/miners_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/miners_test.cpp.o.d"
  "/root/repo/tests/fpm/pathminer_test.cpp" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/pathminer_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/pathminer_test.cpp.o.d"
  "/root/repo/tests/fpm/prefixspan_test.cpp" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/prefixspan_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_fpm_tests.dir/fpm/prefixspan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
