# Empty dependencies file for dfp_fpm_tests.
# This may be replaced when dependencies are built.
