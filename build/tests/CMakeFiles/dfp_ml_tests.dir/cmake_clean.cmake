file(REMOVE_RECURSE
  "CMakeFiles/dfp_ml_tests.dir/ml/c45_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/c45_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/cba_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/cba_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/eval_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/eval_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/harmony_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/harmony_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/knn_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/knn_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/naive_bayes_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/naive_bayes_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/pegasos_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/pegasos_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/stats_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/stats_test.cpp.o.d"
  "CMakeFiles/dfp_ml_tests.dir/ml/svm_test.cpp.o"
  "CMakeFiles/dfp_ml_tests.dir/ml/svm_test.cpp.o.d"
  "dfp_ml_tests"
  "dfp_ml_tests.pdb"
  "dfp_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
