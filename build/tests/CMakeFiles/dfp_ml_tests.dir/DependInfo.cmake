
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/c45_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/c45_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/c45_test.cpp.o.d"
  "/root/repo/tests/ml/cba_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/cba_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/cba_test.cpp.o.d"
  "/root/repo/tests/ml/eval_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/eval_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/eval_test.cpp.o.d"
  "/root/repo/tests/ml/harmony_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/harmony_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/harmony_test.cpp.o.d"
  "/root/repo/tests/ml/knn_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/knn_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/knn_test.cpp.o.d"
  "/root/repo/tests/ml/naive_bayes_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/naive_bayes_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/naive_bayes_test.cpp.o.d"
  "/root/repo/tests/ml/pegasos_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/pegasos_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/pegasos_test.cpp.o.d"
  "/root/repo/tests/ml/stats_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/stats_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/stats_test.cpp.o.d"
  "/root/repo/tests/ml/svm_test.cpp" "tests/CMakeFiles/dfp_ml_tests.dir/ml/svm_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_ml_tests.dir/ml/svm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
