# Empty dependencies file for dfp_ml_tests.
# This may be replaced when dependencies are built.
