file(REMOVE_RECURSE
  "CMakeFiles/dfp_core_tests.dir/core/bounds_property_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/bounds_property_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/bounds_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/bounds_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/direct_miner_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/direct_miner_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/feature_space_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/feature_space_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/graph_pipeline_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/graph_pipeline_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/measures_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/measures_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/minsup_strategy_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/minsup_strategy_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/mmrfs_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/mmrfs_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/model_io_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/model_io_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/redundancy_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/redundancy_test.cpp.o.d"
  "CMakeFiles/dfp_core_tests.dir/core/sequence_pipeline_test.cpp.o"
  "CMakeFiles/dfp_core_tests.dir/core/sequence_pipeline_test.cpp.o.d"
  "dfp_core_tests"
  "dfp_core_tests.pdb"
  "dfp_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
