
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bounds_property_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/bounds_property_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/bounds_property_test.cpp.o.d"
  "/root/repo/tests/core/bounds_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/bounds_test.cpp.o.d"
  "/root/repo/tests/core/direct_miner_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/direct_miner_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/direct_miner_test.cpp.o.d"
  "/root/repo/tests/core/feature_space_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/feature_space_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/feature_space_test.cpp.o.d"
  "/root/repo/tests/core/graph_pipeline_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/graph_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/graph_pipeline_test.cpp.o.d"
  "/root/repo/tests/core/measures_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/measures_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/measures_test.cpp.o.d"
  "/root/repo/tests/core/minsup_strategy_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/minsup_strategy_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/minsup_strategy_test.cpp.o.d"
  "/root/repo/tests/core/mmrfs_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/mmrfs_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/mmrfs_test.cpp.o.d"
  "/root/repo/tests/core/model_io_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/model_io_test.cpp.o.d"
  "/root/repo/tests/core/redundancy_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/redundancy_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/redundancy_test.cpp.o.d"
  "/root/repo/tests/core/sequence_pipeline_test.cpp" "tests/CMakeFiles/dfp_core_tests.dir/core/sequence_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_core_tests.dir/core/sequence_pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
