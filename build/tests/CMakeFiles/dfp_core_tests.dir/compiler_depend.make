# Empty compiler generated dependencies file for dfp_core_tests.
# This may be replaced when dependencies are built.
