file(REMOVE_RECURSE
  "CMakeFiles/dfp_exp_tests.dir/exp/experiment_test.cpp.o"
  "CMakeFiles/dfp_exp_tests.dir/exp/experiment_test.cpp.o.d"
  "dfp_exp_tests"
  "dfp_exp_tests.pdb"
  "dfp_exp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_exp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
