# Empty dependencies file for dfp_exp_tests.
# This may be replaced when dependencies are built.
