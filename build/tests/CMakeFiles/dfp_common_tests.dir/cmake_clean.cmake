file(REMOVE_RECURSE
  "CMakeFiles/dfp_common_tests.dir/common/bitvector_test.cpp.o"
  "CMakeFiles/dfp_common_tests.dir/common/bitvector_test.cpp.o.d"
  "CMakeFiles/dfp_common_tests.dir/common/math_util_test.cpp.o"
  "CMakeFiles/dfp_common_tests.dir/common/math_util_test.cpp.o.d"
  "CMakeFiles/dfp_common_tests.dir/common/misc_test.cpp.o"
  "CMakeFiles/dfp_common_tests.dir/common/misc_test.cpp.o.d"
  "CMakeFiles/dfp_common_tests.dir/common/rng_test.cpp.o"
  "CMakeFiles/dfp_common_tests.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/dfp_common_tests.dir/common/status_test.cpp.o"
  "CMakeFiles/dfp_common_tests.dir/common/status_test.cpp.o.d"
  "CMakeFiles/dfp_common_tests.dir/common/string_util_test.cpp.o"
  "CMakeFiles/dfp_common_tests.dir/common/string_util_test.cpp.o.d"
  "dfp_common_tests"
  "dfp_common_tests.pdb"
  "dfp_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
