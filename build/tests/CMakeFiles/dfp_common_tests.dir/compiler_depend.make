# Empty compiler generated dependencies file for dfp_common_tests.
# This may be replaced when dependencies are built.
