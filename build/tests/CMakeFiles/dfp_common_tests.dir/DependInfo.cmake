
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bitvector_test.cpp" "tests/CMakeFiles/dfp_common_tests.dir/common/bitvector_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_common_tests.dir/common/bitvector_test.cpp.o.d"
  "/root/repo/tests/common/math_util_test.cpp" "tests/CMakeFiles/dfp_common_tests.dir/common/math_util_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_common_tests.dir/common/math_util_test.cpp.o.d"
  "/root/repo/tests/common/misc_test.cpp" "tests/CMakeFiles/dfp_common_tests.dir/common/misc_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_common_tests.dir/common/misc_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/dfp_common_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_common_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/status_test.cpp" "tests/CMakeFiles/dfp_common_tests.dir/common/status_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_common_tests.dir/common/status_test.cpp.o.d"
  "/root/repo/tests/common/string_util_test.cpp" "tests/CMakeFiles/dfp_common_tests.dir/common/string_util_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_common_tests.dir/common/string_util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
