# Empty compiler generated dependencies file for dfp_data_tests.
# This may be replaced when dependencies are built.
