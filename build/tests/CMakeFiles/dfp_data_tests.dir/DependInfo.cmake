
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/chimerge_test.cpp" "tests/CMakeFiles/dfp_data_tests.dir/data/chimerge_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_data_tests.dir/data/chimerge_test.cpp.o.d"
  "/root/repo/tests/data/csv_test.cpp" "tests/CMakeFiles/dfp_data_tests.dir/data/csv_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_data_tests.dir/data/csv_test.cpp.o.d"
  "/root/repo/tests/data/dataset_test.cpp" "tests/CMakeFiles/dfp_data_tests.dir/data/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_data_tests.dir/data/dataset_test.cpp.o.d"
  "/root/repo/tests/data/discretizer_test.cpp" "tests/CMakeFiles/dfp_data_tests.dir/data/discretizer_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_data_tests.dir/data/discretizer_test.cpp.o.d"
  "/root/repo/tests/data/encoder_test.cpp" "tests/CMakeFiles/dfp_data_tests.dir/data/encoder_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_data_tests.dir/data/encoder_test.cpp.o.d"
  "/root/repo/tests/data/synthetic_test.cpp" "tests/CMakeFiles/dfp_data_tests.dir/data/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_data_tests.dir/data/synthetic_test.cpp.o.d"
  "/root/repo/tests/data/transaction_db_test.cpp" "tests/CMakeFiles/dfp_data_tests.dir/data/transaction_db_test.cpp.o" "gcc" "tests/CMakeFiles/dfp_data_tests.dir/data/transaction_db_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
