file(REMOVE_RECURSE
  "CMakeFiles/dfp_data_tests.dir/data/chimerge_test.cpp.o"
  "CMakeFiles/dfp_data_tests.dir/data/chimerge_test.cpp.o.d"
  "CMakeFiles/dfp_data_tests.dir/data/csv_test.cpp.o"
  "CMakeFiles/dfp_data_tests.dir/data/csv_test.cpp.o.d"
  "CMakeFiles/dfp_data_tests.dir/data/dataset_test.cpp.o"
  "CMakeFiles/dfp_data_tests.dir/data/dataset_test.cpp.o.d"
  "CMakeFiles/dfp_data_tests.dir/data/discretizer_test.cpp.o"
  "CMakeFiles/dfp_data_tests.dir/data/discretizer_test.cpp.o.d"
  "CMakeFiles/dfp_data_tests.dir/data/encoder_test.cpp.o"
  "CMakeFiles/dfp_data_tests.dir/data/encoder_test.cpp.o.d"
  "CMakeFiles/dfp_data_tests.dir/data/synthetic_test.cpp.o"
  "CMakeFiles/dfp_data_tests.dir/data/synthetic_test.cpp.o.d"
  "CMakeFiles/dfp_data_tests.dir/data/transaction_db_test.cpp.o"
  "CMakeFiles/dfp_data_tests.dir/data/transaction_db_test.cpp.o.d"
  "dfp_data_tests"
  "dfp_data_tests.pdb"
  "dfp_data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfp_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
