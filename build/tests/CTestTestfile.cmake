# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dfp_common_tests[1]_include.cmake")
include("/root/repo/build/tests/dfp_data_tests[1]_include.cmake")
include("/root/repo/build/tests/dfp_fpm_tests[1]_include.cmake")
include("/root/repo/build/tests/dfp_core_tests[1]_include.cmake")
include("/root/repo/build/tests/dfp_ml_tests[1]_include.cmake")
include("/root/repo/build/tests/dfp_exp_tests[1]_include.cmake")
include("/root/repo/build/tests/dfp_integration_tests[1]_include.cmake")
