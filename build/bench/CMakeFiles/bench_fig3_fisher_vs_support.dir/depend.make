# Empty dependencies file for bench_fig3_fisher_vs_support.
# This may be replaced when dependencies are built.
