# Empty dependencies file for bench_fig1_ig_vs_length.
# This may be replaced when dependencies are built.
