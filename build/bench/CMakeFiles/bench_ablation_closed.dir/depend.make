# Empty dependencies file for bench_ablation_closed.
# This may be replaced when dependencies are built.
