file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_letter.dir/bench_table5_letter.cpp.o"
  "CMakeFiles/bench_table5_letter.dir/bench_table5_letter.cpp.o.d"
  "bench_table5_letter"
  "bench_table5_letter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_letter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
