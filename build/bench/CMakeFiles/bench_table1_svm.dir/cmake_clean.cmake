file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_svm.dir/bench_table1_svm.cpp.o"
  "CMakeFiles/bench_table1_svm.dir/bench_table1_svm.cpp.o.d"
  "bench_table1_svm"
  "bench_table1_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
