# Empty dependencies file for bench_table1_svm.
# This may be replaced when dependencies are built.
