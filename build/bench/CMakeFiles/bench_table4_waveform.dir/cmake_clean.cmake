file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_waveform.dir/bench_table4_waveform.cpp.o"
  "CMakeFiles/bench_table4_waveform.dir/bench_table4_waveform.cpp.o.d"
  "bench_table4_waveform"
  "bench_table4_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
