file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_relevance.dir/bench_ablation_relevance.cpp.o"
  "CMakeFiles/bench_ablation_relevance.dir/bench_ablation_relevance.cpp.o.d"
  "bench_ablation_relevance"
  "bench_ablation_relevance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_relevance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
