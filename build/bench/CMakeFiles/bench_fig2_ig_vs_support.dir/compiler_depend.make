# Empty compiler generated dependencies file for bench_fig2_ig_vs_support.
# This may be replaced when dependencies are built.
