file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ig_vs_support.dir/bench_fig2_ig_vs_support.cpp.o"
  "CMakeFiles/bench_fig2_ig_vs_support.dir/bench_fig2_ig_vs_support.cpp.o.d"
  "bench_fig2_ig_vs_support"
  "bench_fig2_ig_vs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ig_vs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
