file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_c45.dir/bench_table2_c45.cpp.o"
  "CMakeFiles/bench_table2_c45.dir/bench_table2_c45.cpp.o.d"
  "bench_table2_c45"
  "bench_table2_c45.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_c45.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
