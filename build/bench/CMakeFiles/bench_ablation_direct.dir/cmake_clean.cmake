file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_direct.dir/bench_ablation_direct.cpp.o"
  "CMakeFiles/bench_ablation_direct.dir/bench_ablation_direct.cpp.o.d"
  "bench_ablation_direct"
  "bench_ablation_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
