# Empty compiler generated dependencies file for bench_ablation_direct.
# This may be replaced when dependencies are built.
