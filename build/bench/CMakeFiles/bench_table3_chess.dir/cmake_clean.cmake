file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_chess.dir/bench_table3_chess.cpp.o"
  "CMakeFiles/bench_table3_chess.dir/bench_table3_chess.cpp.o.d"
  "bench_table3_chess"
  "bench_table3_chess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_chess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
