
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitvector.cpp" "src/CMakeFiles/dfp.dir/common/bitvector.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/common/bitvector.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/dfp.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/CMakeFiles/dfp.dir/common/string_util.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/common/string_util.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/CMakeFiles/dfp.dir/core/bounds.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/bounds.cpp.o.d"
  "/root/repo/src/core/cover_select.cpp" "src/CMakeFiles/dfp.dir/core/cover_select.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/cover_select.cpp.o.d"
  "/root/repo/src/core/direct_miner.cpp" "src/CMakeFiles/dfp.dir/core/direct_miner.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/direct_miner.cpp.o.d"
  "/root/repo/src/core/feature_space.cpp" "src/CMakeFiles/dfp.dir/core/feature_space.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/feature_space.cpp.o.d"
  "/root/repo/src/core/graph_pipeline.cpp" "src/CMakeFiles/dfp.dir/core/graph_pipeline.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/graph_pipeline.cpp.o.d"
  "/root/repo/src/core/measures.cpp" "src/CMakeFiles/dfp.dir/core/measures.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/measures.cpp.o.d"
  "/root/repo/src/core/minsup_strategy.cpp" "src/CMakeFiles/dfp.dir/core/minsup_strategy.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/minsup_strategy.cpp.o.d"
  "/root/repo/src/core/mmrfs.cpp" "src/CMakeFiles/dfp.dir/core/mmrfs.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/mmrfs.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/CMakeFiles/dfp.dir/core/model_io.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/model_io.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/dfp.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/redundancy.cpp" "src/CMakeFiles/dfp.dir/core/redundancy.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/redundancy.cpp.o.d"
  "/root/repo/src/core/sequence_pipeline.cpp" "src/CMakeFiles/dfp.dir/core/sequence_pipeline.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/core/sequence_pipeline.cpp.o.d"
  "/root/repo/src/data/chimerge.cpp" "src/CMakeFiles/dfp.dir/data/chimerge.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/chimerge.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/dfp.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/dfp.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/discretizer.cpp" "src/CMakeFiles/dfp.dir/data/discretizer.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/discretizer.cpp.o.d"
  "/root/repo/src/data/encoder.cpp" "src/CMakeFiles/dfp.dir/data/encoder.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/encoder.cpp.o.d"
  "/root/repo/src/data/graph.cpp" "src/CMakeFiles/dfp.dir/data/graph.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/graph.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/dfp.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/data/transaction_db.cpp" "src/CMakeFiles/dfp.dir/data/transaction_db.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/data/transaction_db.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/dfp.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/scalability.cpp" "src/CMakeFiles/dfp.dir/exp/scalability.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/exp/scalability.cpp.o.d"
  "/root/repo/src/exp/table_printer.cpp" "src/CMakeFiles/dfp.dir/exp/table_printer.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/exp/table_printer.cpp.o.d"
  "/root/repo/src/fpm/apriori.cpp" "src/CMakeFiles/dfp.dir/fpm/apriori.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/apriori.cpp.o.d"
  "/root/repo/src/fpm/closed_miner.cpp" "src/CMakeFiles/dfp.dir/fpm/closed_miner.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/closed_miner.cpp.o.d"
  "/root/repo/src/fpm/eclat.cpp" "src/CMakeFiles/dfp.dir/fpm/eclat.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/eclat.cpp.o.d"
  "/root/repo/src/fpm/fpgrowth.cpp" "src/CMakeFiles/dfp.dir/fpm/fpgrowth.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/fpgrowth.cpp.o.d"
  "/root/repo/src/fpm/fptree.cpp" "src/CMakeFiles/dfp.dir/fpm/fptree.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/fptree.cpp.o.d"
  "/root/repo/src/fpm/itemset.cpp" "src/CMakeFiles/dfp.dir/fpm/itemset.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/itemset.cpp.o.d"
  "/root/repo/src/fpm/miner.cpp" "src/CMakeFiles/dfp.dir/fpm/miner.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/miner.cpp.o.d"
  "/root/repo/src/fpm/pathminer.cpp" "src/CMakeFiles/dfp.dir/fpm/pathminer.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/pathminer.cpp.o.d"
  "/root/repo/src/fpm/prefixspan.cpp" "src/CMakeFiles/dfp.dir/fpm/prefixspan.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/fpm/prefixspan.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/CMakeFiles/dfp.dir/ml/classifier.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/classifier.cpp.o.d"
  "/root/repo/src/ml/dtree/c45.cpp" "src/CMakeFiles/dfp.dir/ml/dtree/c45.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/dtree/c45.cpp.o.d"
  "/root/repo/src/ml/eval/cross_validation.cpp" "src/CMakeFiles/dfp.dir/ml/eval/cross_validation.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/eval/cross_validation.cpp.o.d"
  "/root/repo/src/ml/eval/feature_filter.cpp" "src/CMakeFiles/dfp.dir/ml/eval/feature_filter.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/eval/feature_filter.cpp.o.d"
  "/root/repo/src/ml/eval/metrics.cpp" "src/CMakeFiles/dfp.dir/ml/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/eval/metrics.cpp.o.d"
  "/root/repo/src/ml/eval/stats.cpp" "src/CMakeFiles/dfp.dir/ml/eval/stats.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/eval/stats.cpp.o.d"
  "/root/repo/src/ml/feature_matrix.cpp" "src/CMakeFiles/dfp.dir/ml/feature_matrix.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/feature_matrix.cpp.o.d"
  "/root/repo/src/ml/knn/knn.cpp" "src/CMakeFiles/dfp.dir/ml/knn/knn.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/knn/knn.cpp.o.d"
  "/root/repo/src/ml/nb/naive_bayes.cpp" "src/CMakeFiles/dfp.dir/ml/nb/naive_bayes.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/nb/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/rules/cba.cpp" "src/CMakeFiles/dfp.dir/ml/rules/cba.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/rules/cba.cpp.o.d"
  "/root/repo/src/ml/rules/harmony.cpp" "src/CMakeFiles/dfp.dir/ml/rules/harmony.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/rules/harmony.cpp.o.d"
  "/root/repo/src/ml/svm/kernel.cpp" "src/CMakeFiles/dfp.dir/ml/svm/kernel.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/svm/kernel.cpp.o.d"
  "/root/repo/src/ml/svm/pegasos.cpp" "src/CMakeFiles/dfp.dir/ml/svm/pegasos.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/svm/pegasos.cpp.o.d"
  "/root/repo/src/ml/svm/smo.cpp" "src/CMakeFiles/dfp.dir/ml/svm/smo.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/svm/smo.cpp.o.d"
  "/root/repo/src/ml/svm/svm.cpp" "src/CMakeFiles/dfp.dir/ml/svm/svm.cpp.o" "gcc" "src/CMakeFiles/dfp.dir/ml/svm/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
