file(REMOVE_RECURSE
  "CMakeFiles/rule_explorer.dir/rule_explorer.cpp.o"
  "CMakeFiles/rule_explorer.dir/rule_explorer.cpp.o.d"
  "rule_explorer"
  "rule_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
