# Empty compiler generated dependencies file for rule_explorer.
# This may be replaced when dependencies are built.
