file(REMOVE_RECURSE
  "CMakeFiles/uci_study.dir/uci_study.cpp.o"
  "CMakeFiles/uci_study.dir/uci_study.cpp.o.d"
  "uci_study"
  "uci_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uci_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
