# Empty dependencies file for uci_study.
# This may be replaced when dependencies are built.
