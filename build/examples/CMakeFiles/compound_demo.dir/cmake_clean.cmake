file(REMOVE_RECURSE
  "CMakeFiles/compound_demo.dir/compound_demo.cpp.o"
  "CMakeFiles/compound_demo.dir/compound_demo.cpp.o.d"
  "compound_demo"
  "compound_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compound_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
