# Empty dependencies file for compound_demo.
# This may be replaced when dependencies are built.
