# Empty dependencies file for xor_demo.
# This may be replaced when dependencies are built.
