file(REMOVE_RECURSE
  "CMakeFiles/xor_demo.dir/xor_demo.cpp.o"
  "CMakeFiles/xor_demo.dir/xor_demo.cpp.o.d"
  "xor_demo"
  "xor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
