file(REMOVE_RECURSE
  "CMakeFiles/minsup_advisor.dir/minsup_advisor.cpp.o"
  "CMakeFiles/minsup_advisor.dir/minsup_advisor.cpp.o.d"
  "minsup_advisor"
  "minsup_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsup_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
