# Empty dependencies file for minsup_advisor.
# This may be replaced when dependencies are built.
