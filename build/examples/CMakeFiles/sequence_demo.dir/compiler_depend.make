# Empty compiler generated dependencies file for sequence_demo.
# This may be replaced when dependencies are built.
