file(REMOVE_RECURSE
  "CMakeFiles/sequence_demo.dir/sequence_demo.cpp.o"
  "CMakeFiles/sequence_demo.dir/sequence_demo.cpp.o.d"
  "sequence_demo"
  "sequence_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
